package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// section3Classification builds the read-only example of Section 3 /
// Figure 2: relations A, B, C of equal size and four read classes
// C1(A, 30%), C2(B, 25%), C3(C, 25%), C4(AB, 20%).
func section3Classification() *Classification {
	cl := NewClassification()
	for _, f := range []string{"A", "B", "C"} {
		cl.AddFragment(Fragment{ID: FragmentID(f), Size: 1})
	}
	cl.MustAddClass(NewClass("C1", Read, 0.30, "A"))
	cl.MustAddClass(NewClass("C2", Read, 0.25, "B"))
	cl.MustAddClass(NewClass("C3", Read, 0.25, "C"))
	cl.MustAddClass(NewClass("C4", Read, 0.20, "A", "B"))
	return cl
}

// appendixAClassification builds the update-aware example of Appendix A:
// tables A, B, C of size 1, reads Q1(A,24%), Q2(B,20%), Q3(C,20%),
// Q4(AB,16%) and updates U1(A,4%), U2(B,10%), U3(C,6%).
func appendixAClassification() *Classification {
	cl := NewClassification()
	for _, f := range []string{"A", "B", "C"} {
		cl.AddFragment(Fragment{ID: FragmentID(f), Size: 1})
	}
	cl.MustAddClass(NewClass("Q1", Read, 0.24, "A"))
	cl.MustAddClass(NewClass("Q2", Read, 0.20, "B"))
	cl.MustAddClass(NewClass("Q3", Read, 0.20, "C"))
	cl.MustAddClass(NewClass("Q4", Read, 0.16, "A", "B"))
	cl.MustAddClass(NewClass("U1", Update, 0.04, "A"))
	cl.MustAddClass(NewClass("U2", Update, 0.10, "B"))
	cl.MustAddClass(NewClass("U3", Update, 0.06, "C"))
	return cl
}

// TestSection3ExampleTwoBackends checks the 2-backend allocation of the
// paper's Section 3 example: B1{A,B} handling C1+C4 = 50% and B2{B,C}
// handling C2+C3 = 50%, speedup 2, with only relation B replicated.
func TestSection3ExampleTwoBackends(t *testing.T) {
	cl := section3Classification()
	a, err := Greedy(cl, UniformBackends(2))
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !almostEq(a.Scale(), 1) {
		t.Fatalf("Scale = %v, want 1 (theoretical speedup 2)", a.Scale())
	}
	if !almostEq(a.Speedup(), 2) {
		t.Fatalf("Speedup = %v, want 2", a.Speedup())
	}
	if !almostEq(a.AssignedLoad(0), 0.5) || !almostEq(a.AssignedLoad(1), 0.5) {
		t.Fatalf("loads = %v %v, want 0.5 0.5 (paper's table)", a.AssignedLoad(0), a.AssignedLoad(1))
	}
	// Paper: "only one relation has to be replicated instead of all
	// three": degree of replication 4/3.
	if !almostEq(a.DegreeOfReplication(), 4.0/3) {
		t.Fatalf("DegreeOfReplication = %v, want 4/3", a.DegreeOfReplication())
	}
	// The paper's exact placement: C1 and C4 together on one backend,
	// C2 and C3 on the other.
	b1 := 0
	if a.Assign(0, "C1") == 0 {
		b1 = 1
	}
	b2 := 1 - b1
	if !almostEq(a.Assign(b1, "C1"), 0.30) || !almostEq(a.Assign(b1, "C4"), 0.20) {
		t.Fatalf("backend %d: C1=%v C4=%v, want 0.30/0.20", b1, a.Assign(b1, "C1"), a.Assign(b1, "C4"))
	}
	if !almostEq(a.Assign(b2, "C2"), 0.25) || !almostEq(a.Assign(b2, "C3"), 0.25) {
		t.Fatalf("backend %d: C2=%v C3=%v, want 0.25/0.25", b2, a.Assign(b2, "C2"), a.Assign(b2, "C3"))
	}
}

// TestSection3ExampleFourBackends checks the 4-backend variant: every
// backend gets exactly 25% of the workload (theoretical speedup 4) and
// the degree of replication stays far below full replication.
func TestSection3ExampleFourBackends(t *testing.T) {
	cl := section3Classification()
	a, err := Greedy(cl, UniformBackends(4))
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for b := 0; b < 4; b++ {
		if !almostEq(a.AssignedLoad(b), 0.25) {
			t.Fatalf("backend %d load = %v, want 0.25", b, a.AssignedLoad(b))
		}
	}
	if !almostEq(a.Speedup(), 4) {
		t.Fatalf("Speedup = %v, want 4", a.Speedup())
	}
	// Full replication would be 4; the paper replicates only two extra
	// tables (degree 5/3 in our deterministic run, and never above 2).
	if r := a.DegreeOfReplication(); r > 2+1e-9 {
		t.Fatalf("DegreeOfReplication = %v, want <= 2", r)
	}
}

// TestAppendixAExample replays the complete heterogeneous worked example
// of Appendix A and checks the final allocation and load matrices
// digit-for-digit against the paper.
func TestAppendixAExample(t *testing.T) {
	cl := appendixAClassification()
	backends := []Backend{
		{Name: "B1", Load: 0.30},
		{Name: "B2", Load: 0.30},
		{Name: "B3", Load: 0.20},
		{Name: "B4", Load: 0.20},
	}
	a, err := Greedy(cl, backends)
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}

	// Final allocation matrix (Appendix A):
	//        A B C
	//   B1   1 1 0
	//   B2   0 1 1
	//   B3   1 0 0
	//   B4   0 0 1
	wantFrags := [][]FragmentID{
		{"A", "B"},
		{"B", "C"},
		{"A"},
		{"C"},
	}
	for b, want := range wantFrags {
		got := a.Fragments(b)
		if len(got) != len(want) {
			t.Fatalf("backend %s fragments = %v, want %v", backends[b].Name, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("backend %s fragments = %v, want %v", backends[b].Name, got, want)
			}
		}
	}

	// Final load matrix (percent):
	//        Q1    Q2   Q3    Q4   U1   U2   U3   Overall
	//   B1   7.2   0    0     16   4    10   0    37.2
	//   B2   0     20   1.2   0    0    10   6    37.2
	//   B3   16.8  0    0     0    4    0    0    20.8
	//   B4   0     0    18.8  0    0    0    6    24.8
	want := map[string][4]float64{
		"Q1": {0.072, 0, 0.168, 0},
		"Q2": {0, 0.20, 0, 0},
		"Q3": {0, 0.012, 0, 0.188},
		"Q4": {0.16, 0, 0, 0},
		"U1": {0.04, 0, 0.04, 0},
		"U2": {0.10, 0.10, 0, 0},
		"U3": {0, 0.06, 0, 0.06},
	}
	for name, row := range want {
		for b := 0; b < 4; b++ {
			if got := a.Assign(b, name); math.Abs(got-row[b]) > 1e-9 {
				t.Errorf("assign(%s, %s) = %v, want %v", name, backends[b].Name, got, row[b])
			}
		}
	}
	wantLoads := []float64{0.372, 0.372, 0.208, 0.248}
	for b, w := range wantLoads {
		if got := a.AssignedLoad(b); math.Abs(got-w) > 1e-9 {
			t.Errorf("assignedLoad(%s) = %v, want %v", backends[b].Name, got, w)
		}
	}
	if !almostEq(a.Scale(), 1.24) {
		t.Errorf("Scale = %v, want 1.24", a.Scale())
	}
	// Eq. 19: speedup = |B|/scale = 4/1.24.
	if !almostEq(a.Speedup(), 4/1.24) {
		t.Errorf("Speedup = %v, want %v", a.Speedup(), 4/1.24)
	}
}

// TestGreedySingleBackend: a single backend must receive everything.
func TestGreedySingleBackend(t *testing.T) {
	cl := appendixAClassification()
	a, err := Greedy(cl, UniformBackends(1))
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	if !almostEq(a.AssignedLoad(0), 1) {
		t.Fatalf("load = %v, want 1", a.AssignedLoad(0))
	}
	if !almostEq(a.DegreeOfReplication(), 1) {
		t.Fatalf("DegreeOfReplication = %v, want 1", a.DegreeOfReplication())
	}
	if !almostEq(a.Speedup(), 1) {
		t.Fatalf("Speedup = %v, want 1", a.Speedup())
	}
}

func TestGreedyErrors(t *testing.T) {
	cl := section3Classification()
	if _, err := Greedy(cl, nil); err == nil {
		t.Error("no backends accepted")
	}
	if _, err := Greedy(cl, []Backend{{"b", 0.5}}); err == nil {
		t.Error("loads not summing to 1 accepted")
	}
	if _, err := GreedyKSafe(cl, UniformBackends(2), -1); err == nil {
		t.Error("negative k accepted")
	}
	if _, err := GreedyKSafe(cl, UniformBackends(2), 2); err == nil {
		t.Error("k >= |B| accepted")
	}
	empty := NewClassification()
	if _, err := Greedy(empty, UniformBackends(2)); err == nil {
		t.Error("empty classification accepted")
	}
}

// TestGreedyUpdateOnlyClass: an update class with no overlapping read
// class must still be allocated (it is in C*).
func TestGreedyUpdateOnlyClass(t *testing.T) {
	cl := NewClassification()
	cl.AddFragment(Fragment{ID: "a", Size: 1})
	cl.AddFragment(Fragment{ID: "log", Size: 5})
	cl.MustAddClass(NewClass("q", Read, 0.6, "a"))
	cl.MustAddClass(NewClass("uLog", Update, 0.4, "log"))
	a, err := Greedy(cl, UniformBackends(2))
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	total := a.Assign(0, "uLog") + a.Assign(1, "uLog")
	if !almostEq(total, 0.4) {
		t.Fatalf("uLog assigned %v in total, want 0.4 (exactly one replica)", total)
	}
	if a.FragmentReplicas("log") != 1 {
		t.Fatalf("log replicated %d times, want 1 (write-heavy data is not replicated)", a.FragmentReplicas("log"))
	}
}

// TestGreedyTransitiveClosure: placing a read class must pull in update
// classes transitively. q references a; u1 covers {a,b}; u2 covers {b}.
// Any backend holding q must hold u1's b and therefore also be assigned
// u2 (Eq. 10).
func TestGreedyTransitiveClosure(t *testing.T) {
	cl := NewClassification()
	for _, f := range []string{"a", "b", "c"} {
		cl.AddFragment(Fragment{ID: FragmentID(f), Size: 1})
	}
	cl.MustAddClass(NewClass("q", Read, 0.5, "a"))
	cl.MustAddClass(NewClass("q2", Read, 0.2, "c"))
	cl.MustAddClass(NewClass("u1", Update, 0.2, "a", "b"))
	cl.MustAddClass(NewClass("u2", Update, 0.1, "b"))
	a, err := Greedy(cl, UniformBackends(2))
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for b := 0; b < 2; b++ {
		if a.Assign(b, "q") > 0 {
			if !almostEq(a.Assign(b, "u1"), 0.2) || !almostEq(a.Assign(b, "u2"), 0.1) {
				t.Fatalf("backend %d holds q but u1=%v u2=%v", b, a.Assign(b, "u1"), a.Assign(b, "u2"))
			}
		}
	}
}

// TestGreedyHeavyReadSplit: a read class heavier than one backend's share
// must be split across several backends (the Section 3 four-backend case
// for C1).
func TestGreedyHeavyReadSplit(t *testing.T) {
	cl := NewClassification()
	cl.AddFragment(Fragment{ID: "a", Size: 1})
	cl.AddFragment(Fragment{ID: "b", Size: 1})
	cl.MustAddClass(NewClass("big", Read, 0.9, "a"))
	cl.MustAddClass(NewClass("small", Read, 0.1, "b"))
	a, err := Greedy(cl, UniformBackends(4))
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !almostEq(a.Speedup(), 4) {
		t.Fatalf("Speedup = %v, want 4 (read-only is always balanceable)", a.Speedup())
	}
	n := 0
	for b := 0; b < 4; b++ {
		if a.Assign(b, "big") > 0 {
			n++
		}
	}
	if n < 4 {
		t.Fatalf("class big (90%%) spread over %d backends, want 4", n)
	}
}

// randomClassification builds a reproducible random classification for
// property tests.
func randomClassification(rng *rand.Rand) *Classification {
	cl := NewClassification()
	nf := 2 + rng.Intn(8)
	frags := make([]FragmentID, nf)
	for i := range frags {
		frags[i] = FragmentID(rune('a' + i))
		cl.AddFragment(Fragment{ID: frags[i], Size: 0.5 + rng.Float64()*9.5})
	}
	nc := 1 + rng.Intn(9)
	for i := 0; i < nc; i++ {
		k := Read
		if rng.Float64() < 0.35 {
			k = Update
		}
		nref := 1 + rng.Intn(3)
		set := make([]FragmentID, 0, nref)
		for j := 0; j < nref; j++ {
			set = append(set, frags[rng.Intn(nf)])
		}
		name := string(rune('Q'))
		if k == Update {
			name = "U"
		}
		cl.MustAddClass(NewClass(name+string(rune('0'+i)), k, 0.05+rng.Float64(), set...))
	}
	if err := cl.Normalize(); err != nil {
		panic(err)
	}
	return cl
}

// TestGreedyPropertyValid: for random classifications and cluster sizes,
// Greedy always returns a valid allocation with scale >= 1, speedup <=
// |B|, and (homogeneous case) speedup within the Eq. 17 bound.
func TestGreedyPropertyValid(t *testing.T) {
	f := func(seed int64, nb uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		cl := randomClassification(rng)
		n := int(nb%9) + 1
		a, err := Greedy(cl, UniformBackends(n))
		if err != nil {
			t.Logf("seed %d n %d: %v", seed, n, err)
			return false
		}
		if err := a.Validate(); err != nil {
			t.Logf("seed %d n %d: %v", seed, n, err)
			return false
		}
		if a.Scale() < 1-1e-9 {
			return false
		}
		if a.Speedup() > float64(n)+1e-9 {
			return false
		}
		if bound := cl.MaxSpeedup(); a.Speedup() > bound+1e-6 {
			t.Logf("seed %d n %d: speedup %v exceeds Eq.17 bound %v", seed, n, a.Speedup(), bound)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestGreedyPropertyHeterogeneous: random heterogeneous loads keep the
// allocation valid.
func TestGreedyPropertyHeterogeneous(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cl := randomClassification(rng)
		n := 2 + rng.Intn(5)
		bs := make([]Backend, n)
		for i := range bs {
			bs[i] = Backend{Name: string(rune('A' + i)), Load: 0.2 + rng.Float64()}
		}
		bs = NormalizeBackends(bs)
		a, err := Greedy(cl, bs)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return a.Validate() == nil && a.Scale() >= 1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestGreedyKSafeProperty: with k-safety every class must exist on at
// least k+1 backends and the allocation must stay valid.
func TestGreedyKSafeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cl := randomClassification(rng)
		n := 3 + rng.Intn(5)
		k := 1 + rng.Intn(2)
		if k >= n {
			k = n - 1
		}
		a, err := GreedyKSafe(cl, UniformBackends(n), k)
		if err != nil {
			t.Logf("seed %d n %d k %d: %v", seed, n, k, err)
			return false
		}
		if err := a.Validate(); err != nil {
			t.Logf("seed %d n %d k %d: %v", seed, n, k, err)
			return false
		}
		for _, c := range cl.Classes() {
			if got := a.ClassReplicas(c); got < k+1 {
				t.Logf("seed %d n %d k %d: class %s has %d replicas, want >= %d", seed, n, k, c.Name, got, k+1)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestKSafetySection3: the read-only example with k=1 keeps the speedup
// at the theoretical maximum (the paper: "The theoretical speedup is
// unaffected by the additional replicas" in the read-only case).
func TestKSafetySection3(t *testing.T) {
	cl := section3Classification()
	a, err := GreedyKSafe(cl, UniformBackends(4), 1)
	if err != nil {
		t.Fatalf("GreedyKSafe: %v", err)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for _, c := range cl.Classes() {
		if a.ClassReplicas(c) < 2 {
			t.Fatalf("class %s has %d replicas, want >= 2", c.Name, a.ClassReplicas(c))
		}
	}
	if !almostEq(a.Speedup(), 4) {
		t.Fatalf("Speedup = %v, want 4 (read-only k-safety costs no throughput)", a.Speedup())
	}
	// But it costs space: strictly more than the k=0 run.
	plain, _ := Greedy(cl, UniformBackends(4))
	if a.DegreeOfReplication() <= plain.DegreeOfReplication() {
		t.Fatalf("k=1 replication %v not above k=0 replication %v", a.DegreeOfReplication(), plain.DegreeOfReplication())
	}
}

func TestEnsureFragmentRedundancy(t *testing.T) {
	cl := NewClassification()
	cl.AddFragment(Fragment{ID: "a", Size: 1})
	cl.AddFragment(Fragment{ID: "b", Size: 1})
	cl.MustAddClass(NewClass("q", Read, 0.5, "a"))
	cl.MustAddClass(NewClass("q2", Read, 0.5, "b"))
	a, err := Greedy(cl, UniformBackends(3))
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	EnsureFragmentRedundancy(a, 2)
	for _, f := range []FragmentID{"a", "b"} {
		if got := a.FragmentReplicas(f); got < 3 {
			t.Fatalf("fragment %s has %d replicas, want >= 3", f, got)
		}
	}
	// Allocation must still be valid (fragment copies do not break Eq. 10
	// because only never-updated fragments are copied).
	if err := a.Validate(); err != nil {
		t.Fatalf("Validate after EnsureFragmentRedundancy: %v", err)
	}
}
