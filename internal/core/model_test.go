package core

import (
	"math"
	"testing"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestClassBasics(t *testing.T) {
	c := NewClass("q1", Read, 0.3, "b", "a", "b")
	if got := c.Fragments(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Fragments() = %v, want [a b]", got)
	}
	if !c.References("a") || c.References("c") {
		t.Fatalf("References misbehaves")
	}
	o := NewClass("q2", Update, 0.1, "b", "c")
	if !c.Overlaps(o) {
		t.Fatalf("q1 and q2 share b, Overlaps = false")
	}
	p := NewClass("q3", Read, 0.1, "z")
	if c.Overlaps(p) {
		t.Fatalf("q1 and q3 are disjoint, Overlaps = true")
	}
	if c.Kind.String() != "read" || o.Kind.String() != "update" {
		t.Fatalf("Kind.String wrong")
	}
}

func TestClassificationErrors(t *testing.T) {
	cl := NewClassification()
	cl.AddFragment(Fragment{ID: "a", Size: 1})
	if err := cl.AddClass(NewClass("", Read, 0.5, "a")); err == nil {
		t.Error("empty name accepted")
	}
	if err := cl.AddClass(NewClass("q", Read, -0.5, "a")); err == nil {
		t.Error("negative weight accepted")
	}
	if err := cl.AddClass(NewClass("q", Read, 0.5, "missing")); err == nil {
		t.Error("unknown fragment accepted")
	}
	if err := cl.AddClass(NewClass("q", Read, 0.5)); err == nil {
		t.Error("empty fragment set accepted")
	}
	if err := cl.AddClass(NewClass("q", Read, 0.5, "a")); err != nil {
		t.Fatalf("valid class rejected: %v", err)
	}
	if err := cl.AddClass(NewClass("q", Read, 0.5, "a")); err == nil {
		t.Error("duplicate name accepted")
	}
	if err := cl.Validate(); err == nil {
		t.Error("weights sum to 0.5, Validate passed")
	}
	if err := cl.Normalize(); err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if err := cl.Validate(); err != nil {
		t.Fatalf("Validate after Normalize: %v", err)
	}
	empty := NewClassification()
	if err := empty.Normalize(); err == nil {
		t.Error("Normalize on empty classification passed")
	}
	if err := empty.Validate(); err == nil {
		t.Error("Validate on empty classification passed")
	}
}

func TestUpdatesForAndMaxSpeedup(t *testing.T) {
	cl := NewClassification()
	for _, f := range []string{"a", "b", "c"} {
		cl.AddFragment(Fragment{ID: FragmentID(f), Size: 1})
	}
	q1 := NewClass("q1", Read, 0.4, "a")
	q2 := NewClass("q2", Read, 0.3, "b", "c")
	u1 := NewClass("u1", Update, 0.2, "a")
	u2 := NewClass("u2", Update, 0.1, "c")
	for _, c := range []*Class{q1, q2, u1, u2} {
		cl.MustAddClass(c)
	}
	if got := cl.UpdatesFor(q1); len(got) != 1 || got[0] != u1 {
		t.Fatalf("UpdatesFor(q1) = %v, want [u1]", got)
	}
	if got := cl.UpdatesFor(q2); len(got) != 1 || got[0] != u2 {
		t.Fatalf("UpdatesFor(q2) = %v, want [u2]", got)
	}
	// An update class's updates() contains itself (Eq. 12).
	if got := cl.UpdatesFor(u1); len(got) != 1 || got[0] != u1 {
		t.Fatalf("UpdatesFor(u1) = %v, want [u1]", got)
	}
	if !almostEq(cl.UpdateWeightFor(q1), 0.2) {
		t.Fatalf("UpdateWeightFor(q1) = %v", cl.UpdateWeightFor(q1))
	}
	// Eq. 17: max over classes of related update weight is 0.2 -> bound 5.
	if got := cl.MaxSpeedup(); !almostEq(got, 5) {
		t.Fatalf("MaxSpeedup = %v, want 5", got)
	}
}

func TestMaxSpeedupReadOnly(t *testing.T) {
	cl := NewClassification()
	cl.AddFragment(Fragment{ID: "a", Size: 1})
	cl.MustAddClass(NewClass("q", Read, 1, "a"))
	if got := cl.MaxSpeedup(); !math.IsInf(got, 1) {
		t.Fatalf("read-only MaxSpeedup = %v, want +Inf", got)
	}
}

func TestUniformAndNormalizeBackends(t *testing.T) {
	bs := UniformBackends(4)
	if len(bs) != 4 {
		t.Fatalf("len = %d", len(bs))
	}
	sum := 0.0
	for _, b := range bs {
		sum += b.Load
	}
	if !almostEq(sum, 1) {
		t.Fatalf("loads sum to %v", sum)
	}
	hetero := NormalizeBackends([]Backend{{"x", 3}, {"y", 1}})
	if !almostEq(hetero[0].Load, 0.75) || !almostEq(hetero[1].Load, 0.25) {
		t.Fatalf("NormalizeBackends = %v", hetero)
	}
}

func TestAllocationAccounting(t *testing.T) {
	cl := NewClassification()
	cl.AddFragment(Fragment{ID: "a", Size: 2})
	cl.AddFragment(Fragment{ID: "b", Size: 3})
	q := NewClass("q", Read, 0.7, "a")
	u := NewClass("u", Update, 0.3, "b")
	cl.MustAddClass(q)
	cl.MustAddClass(u)

	a := NewAllocation(cl, UniformBackends(2))
	a.AddFragments(0, "a")
	a.AddFragments(1, "b")
	a.SetAssign(0, "q", 0.7)
	a.SetAssign(1, "u", 0.3)

	if err := a.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !almostEq(a.AssignedLoad(0), 0.7) || !almostEq(a.AssignedLoad(1), 0.3) {
		t.Fatalf("AssignedLoad = %v %v", a.AssignedLoad(0), a.AssignedLoad(1))
	}
	if !almostEq(a.Scale(), 1.4) {
		t.Fatalf("Scale = %v, want 1.4", a.Scale())
	}
	if !almostEq(a.Speedup(), 2/1.4) {
		t.Fatalf("Speedup = %v", a.Speedup())
	}
	if !almostEq(a.ScaledLoad(0), 0.7) {
		t.Fatalf("ScaledLoad(0) = %v", a.ScaledLoad(0))
	}
	if !almostEq(a.DegreeOfReplication(), 1) {
		t.Fatalf("DegreeOfReplication = %v, want 1 (no replication)", a.DegreeOfReplication())
	}
	if !almostEq(a.DataSize(0), 2) || !almostEq(a.DataSize(1), 3) {
		t.Fatalf("DataSize = %v %v", a.DataSize(0), a.DataSize(1))
	}
	if a.FragmentReplicas("a") != 1 || a.ClassReplicas(q) != 1 {
		t.Fatalf("replica counts wrong")
	}
	if got := a.AssignedClasses(0); len(got) != 1 || got[0] != "q" {
		t.Fatalf("AssignedClasses(0) = %v", got)
	}
	if a.String() == "" {
		t.Fatal("String() empty")
	}

	// Violations.
	bad := a.Clone()
	bad.SetAssign(0, "q", 0.5) // read under-assigned
	if err := bad.Validate(); err == nil {
		t.Error("under-assigned read class passed Validate")
	}
	bad2 := a.Clone()
	bad2.SetAssign(1, "q", 0.1) // assigns a class without its fragments
	if err := bad2.Validate(); err == nil {
		t.Error("assignment without fragments passed Validate")
	}
	bad3 := a.Clone()
	bad3.AddFragments(0, "b") // b on backend 0 but u not assigned there (ROWA violated)
	if err := bad3.Validate(); err == nil {
		t.Error("update data without update assignment passed Validate")
	}
	bad4 := a.Clone()
	bad4.SetAssign(1, "u", 0) // update nowhere
	if err := bad4.Validate(); err == nil {
		t.Error("unassigned update class passed Validate")
	}
}

func TestFullReplication(t *testing.T) {
	cl := NewClassification()
	cl.AddFragment(Fragment{ID: "a", Size: 1})
	cl.AddFragment(Fragment{ID: "b", Size: 1})
	cl.MustAddClass(NewClass("q", Read, 0.75, "a"))
	cl.MustAddClass(NewClass("u", Update, 0.25, "b"))

	a := FullReplication(cl, UniformBackends(4))
	if err := a.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !almostEq(a.DegreeOfReplication(), 4) {
		t.Fatalf("DegreeOfReplication = %v, want 4", a.DegreeOfReplication())
	}
	// Each backend: 0.75/4 read share + 0.25 update = 0.4375; scale = 1.75.
	if !almostEq(a.Scale(), 1.75) {
		t.Fatalf("Scale = %v, want 1.75", a.Scale())
	}
	// Amdahl (Eq. 1): speedup = 1/(0.75/4 + 0.25) = 4/1.75.
	if !almostEq(a.Speedup(), 4/1.75) {
		t.Fatalf("Speedup = %v, want %v", a.Speedup(), 4/1.75)
	}
}

func TestLoadAndAllocationMatrix(t *testing.T) {
	cl := NewClassification()
	cl.AddFragment(Fragment{ID: "a", Size: 1})
	cl.AddFragment(Fragment{ID: "b", Size: 1})
	cl.MustAddClass(NewClass("q", Read, 1, "a"))
	a := NewAllocation(cl, UniformBackends(2))
	a.AddFragments(0, "a")
	a.SetAssign(0, "q", 1)
	lm := a.LoadMatrix()
	if !almostEq(lm[0][0], 1) || !almostEq(lm[1][0], 0) {
		t.Fatalf("LoadMatrix = %v", lm)
	}
	am := a.AllocationMatrix()
	if am[0][0] != 1 || am[0][1] != 0 || am[1][0] != 0 {
		t.Fatalf("AllocationMatrix = %v", am)
	}
}

func TestClassUnion(t *testing.T) {
	c1 := NewClass("c1", Read, 0, "b", "a")
	c2 := NewClass("c2", Read, 0, "c", "b")
	u := ClassUnion(c1, c2)
	if len(u) != 3 || u[0] != "a" || u[1] != "b" || u[2] != "c" {
		t.Fatalf("ClassUnion = %v", u)
	}
}
