package core

import "testing"

// TestMemeticUpdateOnlyWorkload: a classification with only update
// classes must not hang the memetic loop (regression: offspring
// generation looped forever because no mutation could change anything).
func TestMemeticUpdateOnlyWorkload(t *testing.T) {
	cl := NewClassification()
	cl.AddFragment(Fragment{ID: "a", Size: 1})
	cl.AddFragment(Fragment{ID: "b", Size: 2})
	cl.MustAddClass(NewClass("U1", Update, 0.6, "a"))
	cl.MustAddClass(NewClass("U2", Update, 0.4, "b"))
	a, err := Memetic(cl, UniformBackends(3), MemeticOptions{Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMemeticSingleBackend(t *testing.T) {
	cl := section3Classification()
	a, err := Memetic(cl, UniformBackends(1), MemeticOptions{Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}
