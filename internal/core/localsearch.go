package core

import "math/rand"

// localImprove applies the memetic algorithm's improvement step: the two
// local-search strategies of Section 3.3 (Eqs. 21-26) followed by exact
// read re-balancing. It returns whether the allocation improved.
func localImprove(a *Allocation, rng *rand.Rand) bool {
	// One scratch allocation serves every trial move of this improvement
	// run; tryShift/tryEvacuateUpdate overwrite it per probe instead of
	// cloning, which removes the map-allocation churn that dominated the
	// solver's profile.
	sc := a.Clone()
	improved := false
	for pass := 0; pass < 4; pass++ {
		changed := false
		if shiftCommonPairs(a, sc) {
			changed = true
		}
		if reduceHeavyUpdateReplication(a, sc) {
			changed = true
		}
		before := CostOf(a)
		if RebalanceReads(a) == nil {
			if CostOf(a).Less(before) {
				changed = true
			}
		}
		if !changed {
			break
		}
		improved = true
	}
	_ = rng
	return improved
}

// shiftCommonPairs implements the first local-search strategy
// (Eqs. 21-22): if two backends share at least two read classes with
// positive assignments (Eq. 21) whose update sets differ (Eq. 22), the
// shares can be consolidated so each class concentrates on one backend,
// potentially freeing replicated update classes. Every candidate shift
// is evaluated against the cost function and kept only on improvement.
// Complexity is O(|C_Q|² × |B|²) over the candidate space, matching the
// paper's O(|Q|² × |B|) per backend pair.
func shiftCommonPairs(a *Allocation, sc *Allocation) bool {
	ly := a.ly
	reads := ly.reads
	improved := false
	for b1 := 0; b1 < a.NumBackends(); b1++ {
		for b2 := 0; b2 < a.NumBackends(); b2++ {
			if b1 == b2 {
				continue
			}
			// Common read classes (Eq. 21 requires at least two).
			var common []*Class
			for _, c := range reads {
				if a.assign[b1][c.pos] > Eps && a.assign[b2][c.pos] > Eps {
					common = append(common, c)
				}
			}
			if len(common) < 2 {
				continue
			}
			for i := 0; i < len(common); i++ {
				for j := i + 1; j < len(common); j++ {
					c1, c2 := common[i], common[j]
					if sameUpdateSets(ly, c1, c2) {
						continue // Eq. 22: update sets must differ
					}
					if tryShift(a, sc, c1, c2, b1, b2) {
						improved = true
					}
				}
			}
		}
	}
	return improved
}

// sameUpdateSets reports whether two classes have identical update sets
// (Eq. 12). The layout's precomputed per-class update lists are sorted
// by construction, so this is a plain element-wise comparison.
func sameUpdateSets(ly *layout, c1, c2 *Class) bool {
	u1 := ly.classUpd[c1.pos]
	u2 := ly.classUpd[c2.pos]
	if len(u1) != len(u2) {
		return false
	}
	for i := range u1 {
		if u1[i] != u2[i] {
			return false
		}
	}
	return true
}

// tryShift concentrates c1 on b1 and c2 on b2 by exchanging equal
// weight, prunes both backends, and keeps the move only if the cost
// improves. The trial runs on the caller-owned scratch allocation sc.
func tryShift(a, sc *Allocation, c1, c2 *Class, b1, b2 int) bool {
	d := a.assign[b2][c1.pos]
	if w := a.assign[b1][c2.pos]; w < d {
		d = w
	}
	if d <= Eps {
		return false
	}
	before := CostOf(a)
	sc.CopyFrom(a)
	sc.addAssignPos(b1, c1.pos, d)
	sc.addAssignPos(b2, c1.pos, -d)
	sc.addAssignPos(b2, c2.pos, d)
	sc.addAssignPos(b1, c2.pos, -d)
	pruneBackend(sc, b1)
	pruneBackend(sc, b2)
	if CostOf(sc).Less(before) && sc.Validate() == nil {
		a.CopyFrom(sc)
		return true
	}
	return false
}

// reduceHeavyUpdateReplication implements the second local-search
// strategy (Eqs. 23-26): when a heavy update class is replicated on two
// backends (Eq. 23) and a lighter one exists (Eq. 24), move the read
// shares tied to the heavy class off one backend (Eq. 25 requires they
// fit) so the heavy replica can be dropped — accepting that the lighter
// class may become replicated instead (Eq. 26 demands a net win, which
// the cost comparison enforces exactly).
func reduceHeavyUpdateReplication(a *Allocation, sc *Allocation) bool {
	improved := false
	for _, u1 := range a.ly.updates {
		// Backends replicating u1.
		var reps []int
		for b := 0; b < a.NumBackends(); b++ {
			if a.assign[b][u1.pos] > 0 {
				reps = append(reps, b)
			}
		}
		if len(reps) < 2 {
			continue
		}
		// Try to evacuate the replica whose tied read weight is
		// smallest.
		for _, b1 := range reps {
			if tryEvacuateUpdate(a, sc, u1, b1, reps) {
				improved = true
				break
			}
		}
	}
	return improved
}

// tryEvacuateUpdate moves every read share on b1 that references data of
// update class u1 to the other backends replicating u1, then prunes b1.
// The move is kept only if the cost improves. The trial runs on the
// caller-owned scratch allocation sc.
func tryEvacuateUpdate(a, sc *Allocation, u1 *Class, b1 int, reps []int) bool {
	reads := a.ly.reads
	var targets []int
	for _, b := range reps {
		if b != b1 {
			targets = append(targets, b)
		}
	}
	if len(targets) == 0 {
		return false
	}
	// Cheap no-op check before paying for the scratch copy: the move only
	// does anything if b1 carries a read share tied to u1's data.
	any := false
	for _, c := range reads {
		if a.assign[b1][c.pos] > Eps && c.Overlaps(u1) {
			any = true
			break
		}
	}
	if !any {
		return false
	}
	before := CostOf(a)
	sc.CopyFrom(a)
	ti := 0
	for _, c := range reads {
		w := sc.assign[b1][c.pos]
		if w <= Eps || !c.Overlaps(u1) {
			continue
		}
		// Round-robin the shares over the remaining replicas that can
		// execute the class locally (install fragments if needed — the
		// cost comparison vetoes bad ideas).
		to := targets[ti%len(targets)]
		ti++
		installClass(sc, to, c)
		sc.addAssignPos(to, c.pos, w)
		sc.setAssignPos(b1, c.pos, 0)
	}
	pruneBackend(sc, b1)
	// Rebalance to give the move its best chance.
	if err := RebalanceReads(sc); err != nil {
		return false
	}
	if CostOf(sc).Less(before) && sc.Validate() == nil {
		a.CopyFrom(sc)
		return true
	}
	return false
}
