package core

import "math/rand"

// localImprove applies the memetic algorithm's improvement step: the two
// local-search strategies of Section 3.3 (Eqs. 21-26) followed by exact
// read re-balancing. It returns whether the allocation improved.
func localImprove(a *Allocation, rng *rand.Rand) bool {
	improved := false
	for pass := 0; pass < 4; pass++ {
		changed := false
		if shiftCommonPairs(a) {
			changed = true
		}
		if reduceHeavyUpdateReplication(a) {
			changed = true
		}
		before := CostOf(a)
		if RebalanceReads(a) == nil {
			if CostOf(a).Less(before) {
				changed = true
			}
		}
		if !changed {
			break
		}
		improved = true
	}
	_ = rng
	return improved
}

// shiftCommonPairs implements the first local-search strategy
// (Eqs. 21-22): if two backends share at least two read classes with
// positive assignments (Eq. 21) whose update sets differ (Eq. 22), the
// shares can be consolidated so each class concentrates on one backend,
// potentially freeing replicated update classes. Every candidate shift
// is evaluated against the cost function and kept only on improvement.
// Complexity is O(|C_Q|² × |B|²) over the candidate space, matching the
// paper's O(|Q|² × |B|) per backend pair.
func shiftCommonPairs(a *Allocation) bool {
	cls := a.Classification()
	reads := cls.Reads()
	improved := false
	for b1 := 0; b1 < a.NumBackends(); b1++ {
		for b2 := 0; b2 < a.NumBackends(); b2++ {
			if b1 == b2 {
				continue
			}
			// Common read classes (Eq. 21 requires at least two).
			var common []*Class
			for _, c := range reads {
				if a.Assign(b1, c.Name) > Eps && a.Assign(b2, c.Name) > Eps {
					common = append(common, c)
				}
			}
			if len(common) < 2 {
				continue
			}
			for i := 0; i < len(common); i++ {
				for j := i + 1; j < len(common); j++ {
					c1, c2 := common[i], common[j]
					if sameUpdateSets(cls, c1, c2) {
						continue // Eq. 22: update sets must differ
					}
					if tryShift(a, c1, c2, b1, b2) {
						improved = true
					}
				}
			}
		}
	}
	return improved
}

// sameUpdateSets reports whether two classes have identical update sets
// (Eq. 12).
func sameUpdateSets(cls *Classification, c1, c2 *Class) bool {
	u1 := cls.UpdatesFor(c1)
	u2 := cls.UpdatesFor(c2)
	if len(u1) != len(u2) {
		return false
	}
	names := make(map[string]bool, len(u1))
	for _, u := range u1 {
		names[u.Name] = true
	}
	for _, u := range u2 {
		if !names[u.Name] {
			return false
		}
	}
	return true
}

// tryShift concentrates c1 on b1 and c2 on b2 by exchanging equal
// weight, prunes both backends, and keeps the move only if the cost
// improves.
func tryShift(a *Allocation, c1, c2 *Class, b1, b2 int) bool {
	d := a.Assign(b2, c1.Name)
	if w := a.Assign(b1, c2.Name); w < d {
		d = w
	}
	if d <= Eps {
		return false
	}
	before := CostOf(a)
	trial := a.Clone()
	trial.AddAssign(b1, c1.Name, d)
	trial.AddAssign(b2, c1.Name, -d)
	trial.AddAssign(b2, c2.Name, d)
	trial.AddAssign(b1, c2.Name, -d)
	pruneBackend(trial, b1)
	pruneBackend(trial, b2)
	if CostOf(trial).Less(before) && trial.Validate() == nil {
		*a = *trial
		return true
	}
	return false
}

// reduceHeavyUpdateReplication implements the second local-search
// strategy (Eqs. 23-26): when a heavy update class is replicated on two
// backends (Eq. 23) and a lighter one exists (Eq. 24), move the read
// shares tied to the heavy class off one backend (Eq. 25 requires they
// fit) so the heavy replica can be dropped — accepting that the lighter
// class may become replicated instead (Eq. 26 demands a net win, which
// the cost comparison enforces exactly).
func reduceHeavyUpdateReplication(a *Allocation) bool {
	cls := a.Classification()
	improved := false
	for _, u1 := range cls.Updates() {
		// Backends replicating u1.
		var reps []int
		for b := 0; b < a.NumBackends(); b++ {
			if a.Assign(b, u1.Name) > 0 {
				reps = append(reps, b)
			}
		}
		if len(reps) < 2 {
			continue
		}
		// Try to evacuate the replica whose tied read weight is
		// smallest.
		for _, b1 := range reps {
			if tryEvacuateUpdate(a, u1, b1, reps) {
				improved = true
				break
			}
		}
	}
	return improved
}

// tryEvacuateUpdate moves every read share on b1 that references data of
// update class u1 to the other backends replicating u1, then prunes b1.
// The move is kept only if the cost improves.
func tryEvacuateUpdate(a *Allocation, u1 *Class, b1 int, reps []int) bool {
	cls := a.Classification()
	var targets []int
	for _, b := range reps {
		if b != b1 {
			targets = append(targets, b)
		}
	}
	if len(targets) == 0 {
		return false
	}
	before := CostOf(a)
	trial := a.Clone()
	moved := false
	ti := 0
	for _, c := range cls.Reads() {
		w := trial.Assign(b1, c.Name)
		if w <= Eps || !c.Overlaps(u1) {
			continue
		}
		// Round-robin the shares over the remaining replicas that can
		// execute the class locally (install fragments if needed — the
		// cost comparison vetoes bad ideas).
		to := targets[ti%len(targets)]
		ti++
		installClass(trial, to, c)
		trial.AddAssign(to, c.Name, w)
		trial.SetAssign(b1, c.Name, 0)
		moved = true
	}
	if !moved {
		return false
	}
	pruneBackend(trial, b1)
	// Rebalance to give the move its best chance.
	if err := RebalanceReads(trial); err != nil {
		return false
	}
	if CostOf(trial).Less(before) && trial.Validate() == nil {
		*a = *trial
		return true
	}
	return false
}
