package core

import (
	"errors"
	"math"
	"math/rand"
	"runtime"
	"sort"

	"qcpa/internal/par"
)

// Cost is the lexicographic objective of the allocation problem:
// primarily the scale factor (throughput, Eq. 19), secondarily the total
// allocated data size (replication overhead).
type Cost struct {
	Scale float64
	Size  float64
}

// CostOf evaluates an allocation.
func CostOf(a *Allocation) Cost {
	return Cost{Scale: a.Scale(), Size: a.TotalDataSize()}
}

// Less compares costs lexicographically with tolerance on the scale.
func (c Cost) Less(o Cost) bool {
	if math.Abs(c.Scale-o.Scale) > 1e-9 {
		return c.Scale < o.Scale
	}
	return c.Size < o.Size-1e-9
}

// MemeticOptions configure the evolutionary improvement of Algorithm 2.
type MemeticOptions struct {
	// Population is the population size p (default 12).
	Population int
	// Iterations is the number of evolutionary rounds (default 60).
	Iterations int
	// Seed makes the run deterministic (default 1).
	Seed int64
	// Parallelism is the number of worker goroutines mutating and
	// locally improving individuals (0 = GOMAXPROCS, 1 = the sequential
	// reference path). Every individual draws from its own rand.Rand
	// seeded from (Seed, iteration, index) and selection stays on the
	// coordinator, so the result is bit-identical for every value.
	Parallelism int
	// DisableLocalSearch turns the memetic algorithm into a plain
	// evolutionary program (no improvement step), for ablations.
	DisableLocalSearch bool
}

func (o MemeticOptions) withDefaults() MemeticOptions {
	if o.Population == 0 {
		o.Population = 12
	}
	if o.Iterations == 0 {
		o.Iterations = 60
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Parallelism == 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// mixSeed derives the RNG seed of one individual from the run seed, the
// iteration, and the individual's index, using splitmix64-style mixing
// so neighbouring (iteration, index) pairs get uncorrelated streams.
func mixSeed(seed int64, it, idx int) int64 {
	z := uint64(seed) ^ 0x9e3779b97f4a7c15*uint64(it+1) ^ 0xbf58476d1ce4e5b9*uint64(idx+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// splitmix is a rand.Source64 with O(1) seeding for the per-individual
// RNG streams. The stdlib rngSource generates ~600 feedback values on
// every Seed, which dominated the solver profile once each offspring
// attempt drew its own stream; splitmix64 passes BigCrush and costs one
// multiply-xor chain per value.
type splitmix struct{ s uint64 }

func (s *splitmix) Uint64() uint64 {
	s.s += 0x9e3779b97f4a7c15
	z := s.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitmix) Int63() int64    { return int64(s.Uint64() >> 1) }
func (s *splitmix) Seed(seed int64) { s.s = uint64(seed) }

// newStream returns a rand.Rand over a fresh splitmix stream.
func newStream(seed int64) *rand.Rand {
	return rand.New(&splitmix{s: uint64(seed)})
}

// Memetic improves an allocation with the hybrid evolutionary strategy
// of Algorithm 2: starting from the greedy heuristic's solution, each
// iteration mutates the population (no recombination, as in evolutionary
// programming), keeps the best 2/3 of the parents and the best 1/3 of
// the offspring ((λ+µ) selection), and applies the two local-search
// strategies of Eqs. 21-26 plus exact read re-balancing to a random
// third of the survivors. The best allocation found is returned; it is
// never worse than the greedy solution.
func Memetic(cls *Classification, backends []Backend, opts MemeticOptions) (*Allocation, error) {
	init, err := Greedy(cls, backends)
	if err != nil {
		return nil, err
	}
	return MemeticFrom(init, opts)
}

// MemeticFrom runs the memetic algorithm from a given valid initial
// solution.
func MemeticFrom(init *Allocation, opts MemeticOptions) (*Allocation, error) {
	if err := init.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))

	// Nothing to mutate: a single backend, or a workload with no read
	// shares to move (update-only classifications are fully determined
	// by Eq. 10). The greedy solution is final.
	if init.NumBackends() < 2 || len(readPlacements(init)) == 0 {
		return init, nil
	}

	type scored struct {
		a *Allocation
		c Cost
	}
	pop := []scored{{init, CostOf(init)}}

	better := func(x, y scored) bool { return x.c.Less(y.c) }
	sortPop := func(p []scored) {
		sort.SliceStable(p, func(i, j int) bool { return better(p[i], p[j]) })
	}

	for it := 0; it < opts.Iterations; it++ {
		// Mutation: p offspring, each from a single random parent,
		// produced in batches on the worker pool. The coordinator draws
		// every parent index before a batch starts and each attempt
		// mutates with its own (Seed, iteration, attempt)-derived RNG,
		// so the offspring sequence is a pure function of the options —
		// the worker count only changes wall-clock time. The attempt
		// budget guards against degenerate populations whose mutations
		// cannot change anything.
		budget := 20 * opts.Population
		offspring := make([]scored, 0, opts.Population)
		for attempt := 0; len(offspring) < opts.Population && attempt < budget; {
			batch := opts.Population - len(offspring)
			if batch > budget-attempt {
				batch = budget - attempt
			}
			parents := make([]*Allocation, batch)
			seeds := make([]int64, batch)
			for i := 0; i < batch; i++ {
				parents[i] = pop[rng.Intn(len(pop))].a
				seeds[i] = mixSeed(opts.Seed, it, attempt+i)
			}
			results := make([]*Allocation, batch)
			par.For(opts.Parallelism, batch, func(i int) {
				crng := newStream(seeds[i])
				child := parents[i].Clone()
				n := 1 + crng.Intn(3)
				changed := false
				for k := 0; k < n; k++ {
					if mutate(child, crng) {
						changed = true
					}
				}
				if changed && child.Validate() == nil {
					results[i] = child
				}
			})
			for _, child := range results {
				if child != nil && len(offspring) < opts.Population {
					offspring = append(offspring, scored{child, CostOf(child)})
				}
			}
			attempt += batch
		}
		// Selection: best 2/3 of the old population, best 1/3 of the
		// offspring.
		sortPop(pop)
		sortPop(offspring)
		keepOld := (2*opts.Population + 2) / 3
		if keepOld > len(pop) {
			keepOld = len(pop)
		}
		keepNew := opts.Population - keepOld
		if keepNew > len(offspring) {
			keepNew = len(offspring)
		}
		next := make([]scored, 0, keepOld+keepNew)
		next = append(next, pop[:keepOld]...)
		next = append(next, offspring[:keepNew]...)
		pop = next

		// Improvement: local search on a random third of the population,
		// also fanned out — each chosen individual is improved on a
		// private clone and swapped in by the coordinator afterwards.
		if !opts.DisableLocalSearch {
			k := (len(pop) + 2) / 3
			perm := rng.Perm(len(pop))
			chosen := perm[:k]
			improved := make([]*Allocation, len(chosen))
			par.For(opts.Parallelism, len(chosen), func(i int) {
				irng := newStream(mixSeed(opts.Seed, it, budget+i))
				cand := pop[chosen[i]].a.Clone()
				if localImprove(cand, irng) && cand.Validate() == nil {
					improved[i] = cand
				}
			})
			for i, cand := range improved {
				if cand != nil {
					pop[chosen[i]] = scored{cand, CostOf(cand)}
				}
			}
		}
	}
	sortPop(pop)
	best := pop[0]
	if !best.c.Less(CostOf(init)) && CostOf(init).Less(best.c) {
		return init, nil
	}
	return best.a, nil
}

// mutate applies one random structural mutation, returning whether the
// allocation changed. All mutations preserve validity by construction
// (fragments and update classes move with the read shares; orphaned data
// is pruned).
func mutate(a *Allocation, rng *rand.Rand) bool {
	switch rng.Intn(3) {
	case 0:
		return mutateMoveRead(a, rng, false)
	case 1:
		return mutateMoveRead(a, rng, true)
	default:
		return mutateSwapReads(a, rng)
	}
}

// readPlacements lists (class, backend) pairs with a positive read
// assignment, in deterministic order.
func readPlacements(a *Allocation) [][2]int {
	cls := a.Classification()
	var out [][2]int
	for ci, c := range cls.Classes() {
		if c.Kind != Read {
			continue
		}
		for b := 0; b < a.NumBackends(); b++ {
			if a.assign[b][c.pos] > Eps {
				out = append(out, [2]int{ci, b})
			}
		}
	}
	return out
}

// mutateMoveRead moves all or half of one read share to another backend,
// installing the needed fragments and update classes there.
func mutateMoveRead(a *Allocation, rng *rand.Rand, half bool) bool {
	pl := readPlacements(a)
	if len(pl) == 0 || a.NumBackends() < 2 {
		return false
	}
	pick := pl[rng.Intn(len(pl))]
	cls := a.Classification()
	c := cls.Classes()[pick[0]]
	from := pick[1]
	to := rng.Intn(a.NumBackends() - 1)
	if to >= from {
		to++
	}
	w := a.assign[from][c.pos]
	if half {
		w /= 2
	}
	if w <= Eps {
		return false
	}
	installClass(a, to, c)
	a.addAssignPos(to, c.pos, w)
	a.addAssignPos(from, c.pos, -w)
	pruneBackend(a, from)
	return true
}

// mutateSwapReads exchanges the shares of two read classes between two
// backends.
func mutateSwapReads(a *Allocation, rng *rand.Rand) bool {
	pl := readPlacements(a)
	if len(pl) < 2 {
		return false
	}
	p1 := pl[rng.Intn(len(pl))]
	p2 := pl[rng.Intn(len(pl))]
	if p1 == p2 || p1[1] == p2[1] {
		return false
	}
	cls := a.Classification()
	c1, c2 := cls.Classes()[p1[0]], cls.Classes()[p2[0]]
	w1, w2 := a.assign[p1[1]][c1.pos], a.assign[p2[1]][c2.pos]
	w := math.Min(w1, w2)
	if w <= Eps {
		return false
	}
	installClass(a, p2[1], c1)
	installClass(a, p1[1], c2)
	a.addAssignPos(p2[1], c1.pos, w)
	a.addAssignPos(p1[1], c1.pos, -w)
	a.addAssignPos(p1[1], c2.pos, w)
	a.addAssignPos(p2[1], c2.pos, -w)
	pruneBackend(a, p1[1])
	pruneBackend(a, p2[1])
	return true
}

// updateClosureInto marks, in need (indexed by fragment) and hit
// (indexed by position in ly.updates), the transitive closure of update
// classes overlapping the already-marked fragments, folding their
// fragments into need as it goes. Both scratch slices must be pre-sized
// to the layout.
func updateClosureInto(ly *layout, need []bool, hit []bool) {
	for changed := true; changed; {
		changed = false
		for ui, u := range ly.updates {
			if hit[ui] {
				continue
			}
			overlap := false
			for _, i := range ly.classFrag[u.pos] {
				if need[i] {
					overlap = true
					break
				}
			}
			if overlap {
				hit[ui] = true
				for _, i := range ly.classFrag[u.pos] {
					need[i] = true
				}
				changed = true
			}
		}
	}
}

// installClass places the fragments of c and its transitive update
// closure on backend b and assigns the update classes there (Eq. 10).
// Fragments and assignments are installed in dense index order, so the
// result is independent of any map iteration order.
func installClass(a *Allocation, b int, c *Class) {
	ly := a.ly
	need := make([]bool, len(ly.fragIDs))
	for _, i := range ly.classFrag[c.pos] {
		need[i] = true
	}
	hit := make([]bool, len(ly.updates))
	updateClosureInto(ly, need, hit)
	for i, n := range need {
		if n {
			a.addFragIdx(b, i)
		}
	}
	for ui, u := range ly.updates {
		if hit[ui] {
			a.setAssignPos(b, u.pos, u.Weight)
		}
	}
}

// pruneBackend removes data and update assignments from backend b that
// no read share on b requires any more, keeping Eq. 10/11 intact: an
// update class is only dropped if it keeps at least one replica
// elsewhere, and fragments are only removed when no assigned class
// references them.
func pruneBackend(a *Allocation, b int) {
	ly := a.ly

	// Fragments needed by the read shares on b, with the transitive
	// closure over update classes touching needed data.
	needed := make([]bool, len(ly.fragIDs))
	for _, c := range ly.reads {
		if a.assign[b][c.pos] > Eps {
			for _, i := range ly.classFrag[c.pos] {
				needed[i] = true
			}
		}
	}
	keep := make([]bool, len(ly.updates))
	updateClosureInto(ly, needed, keep)
	// Updates with no read dependency on b: droppable only with another
	// replica elsewhere.
	for ui, u := range ly.updates {
		if keep[ui] || a.assign[b][u.pos] <= 0 {
			continue
		}
		elsewhere := false
		for ob := 0; ob < a.NumBackends(); ob++ {
			if ob != b && a.assign[ob][u.pos] > 0 {
				elsewhere = true
				break
			}
		}
		if elsewhere {
			a.setAssignPos(b, u.pos, 0)
		} else {
			keep[ui] = true
			for _, i := range ly.classFrag[u.pos] {
				needed[i] = true
			}
		}
	}
	// Zero read assignments that fell below tolerance.
	for _, c := range ly.reads {
		if w := a.assign[b][c.pos]; w > 0 && w <= Eps {
			a.setAssignPos(b, c.pos, 0)
		}
	}
	// Drop unneeded fragments (in index order, i.e. sorted ID order).
	for i, stored := range a.frags[b] {
		if stored && !needed[i] {
			a.removeFragIdx(b, i)
		}
	}
}

// ErrNoImprovement is returned by improvement helpers when nothing
// changed (exported for callers that distinguish the case).
var ErrNoImprovement = errors.New("core: no improvement found")
