package core

import (
	"errors"
	"math"
	"math/rand"
	"sort"
)

// Cost is the lexicographic objective of the allocation problem:
// primarily the scale factor (throughput, Eq. 19), secondarily the total
// allocated data size (replication overhead).
type Cost struct {
	Scale float64
	Size  float64
}

// CostOf evaluates an allocation.
func CostOf(a *Allocation) Cost {
	return Cost{Scale: a.Scale(), Size: a.TotalDataSize()}
}

// Less compares costs lexicographically with tolerance on the scale.
func (c Cost) Less(o Cost) bool {
	if math.Abs(c.Scale-o.Scale) > 1e-9 {
		return c.Scale < o.Scale
	}
	return c.Size < o.Size-1e-9
}

// MemeticOptions configure the evolutionary improvement of Algorithm 2.
type MemeticOptions struct {
	// Population is the population size p (default 12).
	Population int
	// Iterations is the number of evolutionary rounds (default 60).
	Iterations int
	// Seed makes the run deterministic (default 1).
	Seed int64
	// DisableLocalSearch turns the memetic algorithm into a plain
	// evolutionary program (no improvement step), for ablations.
	DisableLocalSearch bool
}

func (o MemeticOptions) withDefaults() MemeticOptions {
	if o.Population == 0 {
		o.Population = 12
	}
	if o.Iterations == 0 {
		o.Iterations = 60
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Memetic improves an allocation with the hybrid evolutionary strategy
// of Algorithm 2: starting from the greedy heuristic's solution, each
// iteration mutates the population (no recombination, as in evolutionary
// programming), keeps the best 2/3 of the parents and the best 1/3 of
// the offspring ((λ+µ) selection), and applies the two local-search
// strategies of Eqs. 21-26 plus exact read re-balancing to a random
// third of the survivors. The best allocation found is returned; it is
// never worse than the greedy solution.
func Memetic(cls *Classification, backends []Backend, opts MemeticOptions) (*Allocation, error) {
	init, err := Greedy(cls, backends)
	if err != nil {
		return nil, err
	}
	return MemeticFrom(init, opts)
}

// MemeticFrom runs the memetic algorithm from a given valid initial
// solution.
func MemeticFrom(init *Allocation, opts MemeticOptions) (*Allocation, error) {
	if err := init.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))

	// Nothing to mutate: a single backend, or a workload with no read
	// shares to move (update-only classifications are fully determined
	// by Eq. 10). The greedy solution is final.
	if init.NumBackends() < 2 || len(readPlacements(init)) == 0 {
		return init, nil
	}

	type scored struct {
		a *Allocation
		c Cost
	}
	pop := []scored{{init, CostOf(init)}}

	better := func(x, y scored) bool { return x.c.Less(y.c) }
	sortPop := func(p []scored) {
		sort.SliceStable(p, func(i, j int) bool { return better(p[i], p[j]) })
	}

	for it := 0; it < opts.Iterations; it++ {
		// Mutation: p offspring, each from a single random parent. The
		// attempt budget guards against degenerate populations whose
		// mutations cannot change anything.
		offspring := make([]scored, 0, opts.Population)
		for attempts := 0; len(offspring) < opts.Population && attempts < 20*opts.Population; attempts++ {
			parent := pop[rng.Intn(len(pop))]
			child := parent.a.Clone()
			n := 1 + rng.Intn(3)
			changed := false
			for i := 0; i < n; i++ {
				if mutate(child, rng) {
					changed = true
				}
			}
			if !changed {
				continue
			}
			if child.Validate() != nil {
				continue // defensive: discard invalid mutants
			}
			offspring = append(offspring, scored{child, CostOf(child)})
		}
		// Selection: best 2/3 of the old population, best 1/3 of the
		// offspring.
		sortPop(pop)
		sortPop(offspring)
		keepOld := (2*opts.Population + 2) / 3
		if keepOld > len(pop) {
			keepOld = len(pop)
		}
		keepNew := opts.Population - keepOld
		if keepNew > len(offspring) {
			keepNew = len(offspring)
		}
		next := make([]scored, 0, keepOld+keepNew)
		next = append(next, pop[:keepOld]...)
		next = append(next, offspring[:keepNew]...)
		pop = next

		// Improvement: local search on a random third of the population.
		if !opts.DisableLocalSearch {
			k := (len(pop) + 2) / 3
			perm := rng.Perm(len(pop))
			for _, idx := range perm[:k] {
				improved := pop[idx].a.Clone()
				if localImprove(improved, rng) {
					if improved.Validate() == nil {
						pop[idx] = scored{improved, CostOf(improved)}
					}
				}
			}
		}
	}
	sortPop(pop)
	best := pop[0]
	if !best.c.Less(CostOf(init)) && CostOf(init).Less(best.c) {
		return init, nil
	}
	return best.a, nil
}

// mutate applies one random structural mutation, returning whether the
// allocation changed. All mutations preserve validity by construction
// (fragments and update classes move with the read shares; orphaned data
// is pruned).
func mutate(a *Allocation, rng *rand.Rand) bool {
	switch rng.Intn(3) {
	case 0:
		return mutateMoveRead(a, rng, false)
	case 1:
		return mutateMoveRead(a, rng, true)
	default:
		return mutateSwapReads(a, rng)
	}
}

// readPlacements lists (class, backend) pairs with a positive read
// assignment, in deterministic order.
func readPlacements(a *Allocation) [][2]int {
	cls := a.Classification()
	var out [][2]int
	for ci, c := range cls.Classes() {
		if c.Kind != Read {
			continue
		}
		for b := 0; b < a.NumBackends(); b++ {
			if a.Assign(b, c.Name) > Eps {
				out = append(out, [2]int{ci, b})
			}
		}
	}
	return out
}

// mutateMoveRead moves all or half of one read share to another backend,
// installing the needed fragments and update classes there.
func mutateMoveRead(a *Allocation, rng *rand.Rand, half bool) bool {
	pl := readPlacements(a)
	if len(pl) == 0 || a.NumBackends() < 2 {
		return false
	}
	pick := pl[rng.Intn(len(pl))]
	cls := a.Classification()
	c := cls.Classes()[pick[0]]
	from := pick[1]
	to := rng.Intn(a.NumBackends() - 1)
	if to >= from {
		to++
	}
	w := a.Assign(from, c.Name)
	if half {
		w /= 2
	}
	if w <= Eps {
		return false
	}
	installClass(a, to, c)
	a.AddAssign(to, c.Name, w)
	a.AddAssign(from, c.Name, -w)
	pruneBackend(a, from)
	return true
}

// mutateSwapReads exchanges the shares of two read classes between two
// backends.
func mutateSwapReads(a *Allocation, rng *rand.Rand) bool {
	pl := readPlacements(a)
	if len(pl) < 2 {
		return false
	}
	p1 := pl[rng.Intn(len(pl))]
	p2 := pl[rng.Intn(len(pl))]
	if p1 == p2 || p1[1] == p2[1] {
		return false
	}
	cls := a.Classification()
	c1, c2 := cls.Classes()[p1[0]], cls.Classes()[p2[0]]
	w1, w2 := a.Assign(p1[1], c1.Name), a.Assign(p2[1], c2.Name)
	w := math.Min(w1, w2)
	if w <= Eps {
		return false
	}
	installClass(a, p2[1], c1)
	installClass(a, p1[1], c2)
	a.AddAssign(p2[1], c1.Name, w)
	a.AddAssign(p1[1], c1.Name, -w)
	a.AddAssign(p1[1], c2.Name, w)
	a.AddAssign(p2[1], c2.Name, -w)
	pruneBackend(a, p1[1])
	pruneBackend(a, p2[1])
	return true
}

// installClass places the fragments of c and its transitive update
// closure on backend b and assigns the update classes there (Eq. 10).
func installClass(a *Allocation, b int, c *Class) {
	cls := a.Classification()
	fragSet := make(map[FragmentID]struct{})
	for _, f := range c.Fragments() {
		fragSet[f] = struct{}{}
	}
	assigned := make(map[string]bool)
	for changed := true; changed; {
		changed = false
		for _, u := range cls.Updates() {
			if assigned[u.Name] {
				continue
			}
			overlap := false
			for _, f := range u.Fragments() {
				if _, ok := fragSet[f]; ok {
					overlap = true
					break
				}
			}
			if overlap {
				assigned[u.Name] = true
				for _, f := range u.Fragments() {
					fragSet[f] = struct{}{}
				}
				changed = true
			}
		}
	}
	frags := make([]FragmentID, 0, len(fragSet))
	for f := range fragSet {
		frags = append(frags, f)
	}
	a.AddFragments(b, frags...)
	for name := range assigned {
		u := cls.Class(name)
		a.SetAssign(b, name, u.Weight)
	}
}

// pruneBackend removes data and update assignments from backend b that
// no read share on b requires any more, keeping Eq. 10/11 intact: an
// update class is only dropped if it keeps at least one replica
// elsewhere, and fragments are only removed when no assigned class
// references them.
func pruneBackend(a *Allocation, b int) {
	cls := a.Classification()

	// Fragments needed by the read shares on b (with update closure).
	needed := make(map[FragmentID]struct{})
	for _, c := range cls.Reads() {
		if a.Assign(b, c.Name) > Eps {
			for _, f := range c.Fragments() {
				needed[f] = struct{}{}
			}
		}
	}
	// Transitive closure over update classes touching needed data.
	keepUpdates := make(map[string]bool)
	for changed := true; changed; {
		changed = false
		for _, u := range cls.Updates() {
			if keepUpdates[u.Name] {
				continue
			}
			overlap := false
			for _, f := range u.Fragments() {
				if _, ok := needed[f]; ok {
					overlap = true
					break
				}
			}
			if overlap {
				keepUpdates[u.Name] = true
				for _, f := range u.Fragments() {
					needed[f] = struct{}{}
				}
				changed = true
			}
		}
	}
	// Updates with no read dependency on b: droppable only with another
	// replica elsewhere.
	for _, u := range cls.Updates() {
		if keepUpdates[u.Name] || a.Assign(b, u.Name) <= 0 {
			continue
		}
		elsewhere := false
		for ob := 0; ob < a.NumBackends(); ob++ {
			if ob != b && a.Assign(ob, u.Name) > 0 {
				elsewhere = true
				break
			}
		}
		if elsewhere {
			a.SetAssign(b, u.Name, 0)
		} else {
			keepUpdates[u.Name] = true
			for _, f := range u.Fragments() {
				needed[f] = struct{}{}
			}
		}
	}
	// Zero read assignments that fell below tolerance.
	for _, c := range cls.Reads() {
		if w := a.Assign(b, c.Name); w > 0 && w <= Eps {
			a.SetAssign(b, c.Name, 0)
		}
	}
	// Drop unneeded fragments.
	for _, f := range a.Fragments(b) {
		if _, ok := needed[f]; !ok {
			a.RemoveFragment(b, f)
		}
	}
}

// ErrNoImprovement is returned by improvement helpers when nothing
// changed (exported for callers that distinguish the case).
var ErrNoImprovement = errors.New("core: no improvement found")
