package runtime

import (
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHealthStateStrings(t *testing.T) {
	for s, want := range map[HealthState]string{
		Up: "up", Degraded: "degraded", Down: "down", CatchingUp: "catching-up",
	} {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", s, got, want)
		}
	}
	if !Up.ReadEligible() || !Degraded.ReadEligible() {
		t.Error("Up/Degraded must be read-eligible")
	}
	if Down.ReadEligible() || CatchingUp.ReadEligible() {
		t.Error("Down/CatchingUp must not be read-eligible")
	}
}

func TestHealthTransitions(t *testing.T) {
	var h Health
	if h.State() != Up {
		t.Fatalf("zero state = %v, want Up", h.State())
	}
	// First failure: Up -> Degraded.
	if n, down := h.NoteFailure(3); n != 1 || down {
		t.Fatalf("first failure: streak %d down %v", n, down)
	}
	if h.State() != Degraded {
		t.Fatalf("state after one failure = %v", h.State())
	}
	// Success heals Degraded back to Up and resets the streak.
	h.NoteSuccess()
	if h.State() != Up {
		t.Fatalf("state after success = %v", h.State())
	}
	// Threshold consecutive failures demote to Down exactly once.
	var downs int
	for i := 0; i < 5; i++ {
		if _, down := h.NoteFailure(3); down {
			downs++
		}
	}
	if downs != 1 || h.State() != Down {
		t.Fatalf("downs = %d, state = %v", downs, h.State())
	}
	// Success does not resurrect a Down backend — recovery owns that.
	h.NoteSuccess()
	if h.State() != Down {
		t.Fatalf("NoteSuccess resurrected a Down backend: %v", h.State())
	}
	if !h.CompareAndSwap(Down, CatchingUp) {
		t.Fatal("CAS Down->CatchingUp failed")
	}
	if h.CompareAndSwap(Down, Up) {
		t.Fatal("CAS from stale state succeeded")
	}
}

func TestHealthConcurrent(t *testing.T) {
	var h Health
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.NoteFailure(10)
				h.NoteSuccess()
			}
		}()
	}
	wg.Wait()
	if s := h.State(); s != Up && s != Degraded && s != Down {
		t.Fatalf("state = %v", s)
	}
}

func TestUnavailableError(t *testing.T) {
	cause := errors.New("backend exploded")
	err := error(&UnavailableError{Class: "Q7", Tables: []string{"orders"}, Last: cause})
	if !errors.Is(err, ErrUnavailable) {
		t.Fatal("UnavailableError does not match ErrUnavailable")
	}
	if !errors.Is(err, cause) {
		t.Fatal("UnavailableError does not unwrap its cause")
	}
	msg := err.Error()
	for _, want := range []string{"Q7", "orders", "exploded"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
	bare := error(&UnavailableError{})
	if !errors.Is(bare, ErrUnavailable) || bare.Error() == "" {
		t.Fatal("bare UnavailableError malformed")
	}
}

func TestBackoffDelay(t *testing.T) {
	// Zero value: disabled.
	var off Backoff
	if d := off.Delay(3, nil); d != 0 {
		t.Fatalf("zero backoff delay = %v", d)
	}
	b := Backoff{Base: time.Millisecond, Max: 8 * time.Millisecond}
	// Deterministic midpoints without an rng: half of min(Max, Base·2^i).
	for i, want := range []time.Duration{
		time.Millisecond / 2, time.Millisecond, 2 * time.Millisecond,
		4 * time.Millisecond, 4 * time.Millisecond, 4 * time.Millisecond,
	} {
		if d := b.Delay(i, nil); d != want {
			t.Fatalf("Delay(%d) = %v, want %v", i, d, want)
		}
	}
	// Jittered delays stay inside the window and vary.
	rng := rand.New(rand.NewSource(1))
	seen := map[time.Duration]bool{}
	for i := 0; i < 100; i++ {
		d := b.Delay(2, rng)
		if d < 0 || d > 4*time.Millisecond {
			t.Fatalf("jittered delay %v outside [0, 4ms]", d)
		}
		seen[d] = true
	}
	if len(seen) < 10 {
		t.Fatalf("jitter produced only %d distinct delays", len(seen))
	}
	// Default Max kicks in at 32×Base.
	b = Backoff{Base: time.Millisecond}
	if d := b.Delay(20, nil); d != 16*time.Millisecond {
		t.Fatalf("default-max delay = %v, want 16ms", d)
	}
}

func TestBackoffLargeAttemptNoOverflow(t *testing.T) {
	b := Backoff{Base: time.Second, Max: time.Minute}
	for attempt := 0; attempt < 200; attempt++ {
		if d := b.Delay(attempt, nil); d < 0 || d > time.Minute {
			t.Fatalf("attempt %d: delay %v", attempt, d)
		}
	}
}
