package runtime

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync/atomic"
	"time"
)

// HealthState is the per-backend availability state machine shared by
// the live cluster and the simulator's failure model:
//
//	Up ──read error──▶ Degraded ──repeated errors / Fail──▶ Down
//	 ▲                    │                                   │
//	 │                    └────────read success───────────────┤ Recover
//	 └──redo log drained + checksums verified── CatchingUp ◀──┘
//
// Up and Degraded backends serve reads (Degraded only when no Up
// replica is eligible) and apply ROWA updates directly. A Down backend
// receives nothing; its missed updates accumulate in a bounded redo
// log. A CatchingUp backend is replaying that log: it applies updates
// again but stays out of the read-eligible set until the log is
// drained and its table checksums match a live replica.
type HealthState int32

const (
	// Up is the healthy steady state.
	Up HealthState = iota
	// Degraded marks a backend with recent errors: still usable, but
	// reads prefer Up replicas.
	Degraded
	// Down marks a failed (or administratively failed) backend.
	Down
	// CatchingUp marks a recovering backend replaying missed updates.
	CatchingUp
)

// String returns the state name used in reports and wire snapshots.
func (s HealthState) String() string {
	switch s {
	case Up:
		return "up"
	case Degraded:
		return "degraded"
	case Down:
		return "down"
	case CatchingUp:
		return "catching-up"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// ReadEligible reports whether a backend in this state may serve reads.
func (s HealthState) ReadEligible() bool { return s == Up || s == Degraded }

// Health is an atomic holder of one backend's state plus its
// consecutive-read-failure counter. The zero value is Up with no
// failures. All methods are safe for concurrent use.
type Health struct {
	state    atomic.Int32
	failures atomic.Int32
}

// State returns the current state.
func (h *Health) State() HealthState { return HealthState(h.state.Load()) }

// Set unconditionally stores a state.
func (h *Health) Set(s HealthState) { h.state.Store(int32(s)) }

// CompareAndSwap transitions from one specific state to another and
// reports whether it happened.
func (h *Health) CompareAndSwap(from, to HealthState) bool {
	return h.state.CompareAndSwap(int32(from), int32(to))
}

// NoteSuccess records a successful read: the failure streak resets and
// a Degraded backend is promoted back to Up. Down and CatchingUp are
// never left implicitly — recovery owns those transitions.
func (h *Health) NoteSuccess() {
	h.failures.Store(0)
	h.CompareAndSwap(Degraded, Up)
}

// NoteFailure records a failed read and returns the new consecutive
// failure count. The first failure demotes Up to Degraded; when the
// streak reaches threshold the backend is demoted to Down (the caller
// learns this from the return value crossing the threshold).
func (h *Health) NoteFailure(threshold int) (streak int, wentDown bool) {
	n := int(h.failures.Add(1))
	h.CompareAndSwap(Up, Degraded)
	if threshold > 0 && n >= threshold {
		if h.CompareAndSwap(Degraded, Down) {
			return n, true
		}
	}
	return n, false
}

// ResetFailures clears the consecutive failure streak (used when a
// backend is administratively revived).
func (h *Health) ResetFailures() { h.failures.Store(0) }

// ErrUnavailable is the sentinel matched by errors.Is for reads (or
// writes) that found no live replica. The concrete error is
// *UnavailableError, which names the query class.
var ErrUnavailable = errors.New("runtime: no live replica available")

// UnavailableError reports a request whose every eligible replica was
// Down (or had already failed the request). It unwraps to
// ErrUnavailable and, when the failure was caused by replica errors
// rather than pure unavailability, to the last such error.
type UnavailableError struct {
	// Class is the query class of the failed request ("" when the
	// request was routed by table references alone).
	Class string
	// Tables are the tables the request needed.
	Tables []string
	// Last is the last per-replica error observed before giving up
	// (nil when every replica was Down from the start).
	Last error
}

// Error formats the failure with its class, tables, and last cause.
func (e *UnavailableError) Error() string {
	var b strings.Builder
	b.WriteString("runtime: no live replica")
	if e.Class != "" {
		fmt.Fprintf(&b, " for class %s", e.Class)
	}
	if len(e.Tables) > 0 {
		fmt.Fprintf(&b, " (tables %s)", strings.Join(e.Tables, ", "))
	}
	if e.Last != nil {
		fmt.Fprintf(&b, ": last error: %v", e.Last)
	}
	return b.String()
}

// Is matches ErrUnavailable.
func (e *UnavailableError) Is(target error) bool { return target == ErrUnavailable }

// Unwrap exposes the last per-replica error to errors.Is/As chains.
func (e *UnavailableError) Unwrap() error { return e.Last }

// Backoff computes retry delays: full-jitter exponential backoff
// (AWS-style), delay_i drawn uniformly from [0, min(Max, Base·2^i)].
// The zero value disables waiting (Delay returns 0), which keeps
// existing configurations behaving as before.
type Backoff struct {
	// Base is the cap of the first delay. Zero disables backoff.
	Base time.Duration
	// Max bounds the exponential growth (default 32×Base).
	Max time.Duration
}

// Delay returns the delay before retry attempt (0-based). rng may be
// nil, in which case the midpoint of the jitter window is used so
// callers without a randomness source still back off deterministically.
func (b Backoff) Delay(attempt int, rng *rand.Rand) time.Duration {
	if b.Base <= 0 {
		return 0
	}
	max := b.Max
	if max <= 0 {
		// The 32×Base default must not wrap for a huge Base (Duration
		// is int64; 32× overflows past ~9.2 years of nanoseconds).
		if b.Base > math.MaxInt64/32 {
			max = math.MaxInt64
		} else {
			max = 32 * b.Base
		}
	}
	window := b.Base
	for i := 0; i < attempt && window < max; i++ {
		// Clamp before doubling: for a large max (say MaxInt64),
		// window*2 wraps negative long before the loop condition stops
		// it, turning the jitter draw into a rand.Int63n panic — or, for
		// the nil-rng midpoint, into a negative "delay" that makes the
		// retry loop spin.
		if window > max/2 {
			window = max
			break
		}
		window *= 2
	}
	if window > max {
		window = max
	}
	if rng == nil {
		return window / 2
	}
	if int64(window) == math.MaxInt64 {
		// Int63n's argument would overflow to MinInt64.
		return time.Duration(rng.Int63())
	}
	return time.Duration(rng.Int63n(int64(window) + 1))
}
