// Package runtime is the shared scheduling core of the CDBS processing
// model (Section 2): the read-scheduling policies used by both the
// discrete-event simulator (internal/sim) and the live cluster
// controller (internal/cluster). Keeping one implementation guarantees
// that a policy choice evaluated in a simulation sweep behaves
// identically on the real runtime, and gives every future routing
// feature (retries, backpressure, autoscaling triggers) a single place
// to land.
//
// The metrics sub-package (internal/runtime/metrics) holds the
// per-backend runtime counters the controller exports.
package runtime

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
)

// Policy selects which of n eligible backends receives the next read.
// Implementations must be safe for concurrent use: the live cluster
// calls Pick from many request goroutines at once.
type Policy interface {
	// Name returns the canonical flag spelling of the policy.
	Name() string
	// Pick returns a position in [0, n). pending reports the number of
	// in-flight plus queued requests of the backend at position i; rng
	// is the caller's randomness source (only consulted by randomized
	// policies, which draw from it exactly once per call so seeded runs
	// are reproducible).
	Pick(n int, pending func(i int) int, rng *rand.Rand) int
}

// Kind enumerates the built-in policies.
type Kind int

const (
	// LeastPending is the paper's least-pending-request-first strategy.
	LeastPending Kind = iota
	// RandomEligible picks a uniformly random eligible backend (an
	// ablation baseline).
	RandomEligible
	// RoundRobin cycles through the eligible backends (ablation).
	RoundRobin
)

// String returns the canonical flag spelling of the kind.
func (k Kind) String() string {
	switch k {
	case RandomEligible:
		return "random"
	case RoundRobin:
		return "round-robin"
	default:
		return "least-pending"
	}
}

// New returns a fresh policy instance of this kind. Stateful policies
// (RoundRobin) get their own state, so each cluster or simulator run
// cycles independently. An out-of-range kind behaves as LeastPending,
// matching the historical simulator default.
func (k Kind) New() Policy {
	switch k {
	case RandomEligible:
		return randomEligible{}
	case RoundRobin:
		return &roundRobin{}
	default:
		return leastPending{}
	}
}

// Kinds lists the built-in policy kinds in flag order.
func Kinds() []Kind { return []Kind{LeastPending, RandomEligible, RoundRobin} }

// ParseKind resolves a flag spelling ("least-pending", "random",
// "round-robin", or the short forms "lp", "rnd", "rr") to its Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "least-pending", "lp", "":
		return LeastPending, nil
	case "random", "rnd":
		return RandomEligible, nil
	case "round-robin", "rr":
		return RoundRobin, nil
	}
	return 0, fmt.Errorf("runtime: unknown scheduling policy %q (want least-pending, random, or round-robin)", s)
}

type leastPending struct{}

func (leastPending) Name() string { return "least-pending" }

func (leastPending) Pick(n int, pending func(i int) int, _ *rand.Rand) int {
	best, bestP := 0, pending(0)
	for i := 1; i < n; i++ {
		if p := pending(i); p < bestP {
			best, bestP = i, p
		}
	}
	return best
}

type randomEligible struct{}

func (randomEligible) Name() string { return "random" }

func (randomEligible) Pick(n int, _ func(i int) int, rng *rand.Rand) int {
	if rng == nil {
		return 0
	}
	return rng.Intn(n)
}

type roundRobin struct{ next atomic.Uint64 }

func (*roundRobin) Name() string { return "round-robin" }

func (r *roundRobin) Pick(n int, _ func(i int) int, _ *rand.Rand) int {
	return int((r.next.Add(1) - 1) % uint64(n))
}

// lockedSource is a rand.Source64 guarded by a mutex, so one *rand.Rand
// can serve concurrent request goroutines.
type lockedSource struct {
	mu  sync.Mutex
	src rand.Source64
}

func (s *lockedSource) Int63() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.src.Int63()
}

func (s *lockedSource) Uint64() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.src.Uint64()
}

func (s *lockedSource) Seed(seed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.src.Seed(seed)
}

// NewLockedRand returns a seeded *rand.Rand that is safe for concurrent
// use — the randomness source randomized policies receive from the live
// cluster.
func NewLockedRand(seed int64) *rand.Rand {
	if seed == 0 {
		seed = 1
	}
	return rand.New(&lockedSource{src: rand.NewSource(seed).(rand.Source64)})
}
