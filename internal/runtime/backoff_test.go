package runtime

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// TestBackoffDelayBoundaries exercises the overflow edges of the
// exponential window: a Base big enough that the 32x default max would
// wrap, a Max pinned at MaxInt64, and attempt counts far past the
// doubling range. Every delay must be non-negative and within the
// window — a wrapped multiply used to produce negative "delays" (nil
// rng) or a rand.Int63n panic (with rng).
func TestBackoffDelayBoundaries(t *testing.T) {
	huge := time.Duration(math.MaxInt64)
	cases := []struct {
		name    string
		b       Backoff
		attempt int
		// wantMax bounds the returned delay; wantMid is the exact
		// nil-rng midpoint (-1 to skip the exact check).
		wantMax time.Duration
		wantMid time.Duration
	}{
		{"zero value disabled", Backoff{}, 5, 0, 0},
		{"negative base disabled", Backoff{Base: -time.Second}, 3, 0, 0},
		{"first attempt", Backoff{Base: time.Second}, 0, time.Second, time.Second / 2},
		{"doubling", Backoff{Base: time.Second}, 3, 8 * time.Second, 4 * time.Second},
		{"default max reached", Backoff{Base: time.Second}, 100, 32 * time.Second, 16 * time.Second},
		{"explicit max clamps", Backoff{Base: time.Second, Max: 3 * time.Second}, 100, 3 * time.Second, 3 * time.Second / 2},
		{"base beyond default-max overflow", Backoff{Base: huge / 16}, 100, huge, -1},
		{"max pinned at MaxInt64", Backoff{Base: time.Second, Max: huge}, 200, huge, -1},
		{"base at MaxInt64", Backoff{Base: huge}, 1, huge, huge / 2},
		{"attempt past 63 doublings", Backoff{Base: 1, Max: huge}, 200, huge, -1},
	}
	rng := rand.New(rand.NewSource(1))
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mid := tc.b.Delay(tc.attempt, nil)
			if mid < 0 {
				t.Fatalf("nil-rng delay negative: %v", mid)
			}
			if mid > tc.wantMax {
				t.Fatalf("nil-rng delay %v above window max %v", mid, tc.wantMax)
			}
			if tc.wantMid >= 0 && mid != tc.wantMid {
				t.Fatalf("nil-rng delay = %v, want midpoint %v", mid, tc.wantMid)
			}
			for i := 0; i < 50; i++ {
				d := tc.b.Delay(tc.attempt, rng)
				if d < 0 {
					t.Fatalf("delay negative: %v", d)
				}
				if d > tc.wantMax {
					t.Fatalf("delay %v above window max %v", d, tc.wantMax)
				}
			}
		})
	}
}
