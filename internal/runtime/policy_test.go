package runtime

import (
	"math/rand"
	"sync"
	"testing"
)

func pendingOf(counts ...int) func(int) int {
	return func(i int) int { return counts[i] }
}

func TestLeastPendingPicksMinimum(t *testing.T) {
	p := LeastPending.New()
	if got := p.Pick(4, pendingOf(3, 1, 2, 5), nil); got != 1 {
		t.Fatalf("pick = %d, want 1", got)
	}
}

func TestLeastPendingTieBreaksFirst(t *testing.T) {
	p := LeastPending.New()
	for i := 0; i < 5; i++ {
		if got := p.Pick(3, pendingOf(2, 2, 2), nil); got != 0 {
			t.Fatalf("tie pick = %d, want 0 (first eligible)", got)
		}
	}
}

func TestRoundRobinCycles(t *testing.T) {
	p := RoundRobin.New()
	var got []int
	for i := 0; i < 6; i++ {
		got = append(got, p.Pick(3, pendingOf(0, 0, 0), nil))
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequence = %v, want %v", got, want)
		}
	}
}

func TestRoundRobinConcurrentCoverage(t *testing.T) {
	p := RoundRobin.New()
	const n, picks = 4, 400
	counts := make([]int, n)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < picks/8; i++ {
				b := p.Pick(n, pendingOf(0, 0, 0, 0), nil)
				mu.Lock()
				counts[b]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for b, c := range counts {
		if c != picks/n {
			t.Fatalf("backend %d got %d picks, want %d (counts %v)", b, c, picks/n, counts)
		}
	}
}

func TestRandomEligibleStaysInRangeAndSpreads(t *testing.T) {
	p := RandomEligible.New()
	rng := rand.New(rand.NewSource(1))
	seen := map[int]int{}
	for i := 0; i < 300; i++ {
		b := p.Pick(3, pendingOf(0, 0, 0), rng)
		if b < 0 || b >= 3 {
			t.Fatalf("pick %d out of range", b)
		}
		seen[b]++
	}
	if len(seen) != 3 {
		t.Fatalf("random policy never hit all backends: %v", seen)
	}
}

func TestRandomEligibleNilRNGFallsBack(t *testing.T) {
	if got := RandomEligible.New().Pick(3, pendingOf(0, 0, 0), nil); got != 0 {
		t.Fatalf("nil-rng pick = %d, want 0", got)
	}
}

func TestParseKindRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Fatal(err)
		}
		if got != k {
			t.Fatalf("ParseKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
	for in, want := range map[string]Kind{"lp": LeastPending, "rnd": RandomEligible, "rr": RoundRobin, "": LeastPending} {
		got, err := ParseKind(in)
		if err != nil || got != want {
			t.Fatalf("ParseKind(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestKindNewDefaultsOutOfRange(t *testing.T) {
	if name := Kind(99).New().Name(); name != "least-pending" {
		t.Fatalf("out-of-range kind = %s", name)
	}
}

func TestNewLockedRandConcurrent(t *testing.T) {
	rng := NewLockedRand(7)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if v := rng.Intn(10); v < 0 || v >= 10 {
					t.Errorf("out of range: %d", v)
					return
				}
			}
		}()
	}
	wg.Wait()
}
