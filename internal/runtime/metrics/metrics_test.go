package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestBackendCountersAndGauge(t *testing.T) {
	b := NewBackend()
	b.IncPending()
	b.IncPending()
	b.DecPending()
	if got := b.Pending(); got != 1 {
		t.Fatalf("pending = %d, want 1", got)
	}
	b.ObserveRead(2*time.Millisecond, false)
	b.ObserveRead(4*time.Millisecond, true)
	b.ObserveWrite(1*time.Millisecond, false)
	s := b.Snapshot("B1")
	if s.Name != "B1" || s.Reads != 2 || s.Writes != 1 || s.Errors != 1 || s.Pending != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.ReadLatency.Count != 2 || s.ReadLatency.MaxUS < 4000 {
		t.Fatalf("read latency = %+v", s.ReadLatency)
	}
	if s.ReadLatency.P50US <= 0 || s.ReadLatency.P99US < s.ReadLatency.P50US {
		t.Fatalf("percentiles inconsistent: %+v", s.ReadLatency)
	}
	if s.WriteLatency.Count != 1 {
		t.Fatalf("write latency = %+v", s.WriteLatency)
	}
}

func TestRegistryFanout(t *testing.T) {
	r := NewRegistry()
	r.ObserveFanout(2)
	r.ObserveFanout(3)
	r.ObserveFanout(1)
	f := r.Fanout()
	if f.Writes != 3 || f.MaxWidth != 3 {
		t.Fatalf("fanout = %+v", f)
	}
	if f.MeanWidth != 2 {
		t.Fatalf("mean width = %v, want 2", f.MeanWidth)
	}
}

func TestRegistryReliability(t *testing.T) {
	r := NewRegistry()
	r.ObserveRetry()
	r.ObserveRetry()
	r.ObserveUnavailable()
	r.ObserveRedoAppend()
	r.ObserveRedoAppend()
	r.ObserveRedoAppend()
	r.ObserveCatchUp(20 * time.Millisecond)
	r.ObserveCatchUp(40 * time.Millisecond)
	s := r.Reliability()
	if s.Retries != 2 || s.Unavailable != 1 || s.RedoAppends != 3 {
		t.Fatalf("reliability = %+v", s)
	}
	if s.Catchups != 2 || s.MeanCatchupMS != 30 || s.MaxCatchupMS < 40 {
		t.Fatalf("catch-up series = %+v", s)
	}
}

func TestBackendFailovers(t *testing.T) {
	b := NewBackend()
	b.ObserveFailover()
	b.ObserveFailover()
	s := b.Snapshot("B1")
	if s.Failovers != 2 {
		t.Fatalf("failovers = %d, want 2", s.Failovers)
	}
	if s.State != "" {
		t.Fatalf("state should be caller-owned, got %q", s.State)
	}
}

func TestConcurrentObserves(t *testing.T) {
	b := NewBackend()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b.IncPending()
				b.ObserveRead(time.Microsecond*time.Duration(i), false)
				b.DecPending()
			}
		}()
	}
	wg.Wait()
	s := b.Snapshot("x")
	if s.Reads != 4000 || s.Pending != 0 {
		t.Fatalf("snapshot = %+v", s)
	}
}
