// Package metrics is the runtime layer's observability sub-layer:
// per-backend request counters, pending-request gauges, and latency
// histograms, plus controller-level series (ROWA fan-out width). The
// cluster controller feeds it on every request and exports snapshots
// through the server's {"cmd":"metrics"} wire command.
//
// All write paths are lock-free (atomic counters and stats.ExpHistogram
// buckets), so recording on the hot request path costs a handful of
// atomic adds. Snapshots are read concurrently with updates and are
// only approximately consistent across counters — fine for monitoring.
package metrics

import (
	"sync/atomic"
	"time"

	"qcpa/internal/stats"
)

// Backend aggregates the runtime counters of one backend. The pending
// gauge doubles as the scheduling input of the least-pending policy:
// the controller reads it through runtime.Policy's pending function.
type Backend struct {
	reads     atomic.Int64
	writes    atomic.Int64
	errors    atomic.Int64
	pending   atomic.Int64
	failovers atomic.Int64
	readLat   stats.ExpHistogram // microseconds
	writeLat  stats.ExpHistogram // microseconds
}

// NewBackend returns a zeroed per-backend metrics block.
func NewBackend() *Backend { return &Backend{} }

// IncPending notes a request queued or in flight on this backend.
func (b *Backend) IncPending() { b.pending.Add(1) }

// DecPending notes a request leaving the backend.
func (b *Backend) DecPending() { b.pending.Add(-1) }

// Pending returns the current pending-request gauge.
func (b *Backend) Pending() int64 { return b.pending.Load() }

// ObserveRead records one completed read and its service latency.
func (b *Backend) ObserveRead(d time.Duration, failed bool) {
	b.reads.Add(1)
	if failed {
		b.errors.Add(1)
	}
	b.readLat.Observe(d.Microseconds())
}

// ObserveWrite records one applied update (one replica) and its apply
// latency.
func (b *Backend) ObserveWrite(d time.Duration, failed bool) {
	b.writes.Add(1)
	if failed {
		b.errors.Add(1)
	}
	b.writeLat.Observe(d.Microseconds())
}

// ObserveFailover records a read that failed (or found this backend
// Down) and was routed away to another replica.
func (b *Backend) ObserveFailover() { b.failovers.Add(1) }

// Snapshot captures the backend's counters under the given display
// name (backend names can change across elastic resizes, so the caller
// supplies the current one). The health State is likewise owned by the
// caller — the cluster fills it in after taking the snapshot.
func (b *Backend) Snapshot(name string) BackendSnapshot {
	return BackendSnapshot{
		Name:         name,
		Reads:        b.reads.Load(),
		Writes:       b.writes.Load(),
		Errors:       b.errors.Load(),
		Pending:      b.pending.Load(),
		Failovers:    b.failovers.Load(),
		ReadLatency:  latencySnapshot(&b.readLat),
		WriteLatency: latencySnapshot(&b.writeLat),
	}
}

// Admission holds the server edge's overload-protection series: live
// and rejected connections, admitted/shed/drained request counts, the
// admission queue-depth gauge, and the queue-wait histogram. Like the
// backend counters, every write path is a handful of atomics so the
// wire hot path stays cheap.
type Admission struct {
	conns         atomic.Int64 // live connections (gauge)
	connsTotal    atomic.Int64 // connections ever accepted
	connsRejected atomic.Int64 // connections refused at the MaxConns cap
	admitted      atomic.Int64 // requests that won an execution slot
	shed          atomic.Int64 // requests rejected with the typed overload error
	drained       atomic.Int64 // requests rejected with the typed draining error
	tooLarge      atomic.Int64 // oversized request lines answered and resynced
	expired       atomic.Int64 // requests whose deadline passed while queued
	queued        atomic.Int64 // admission queue depth (gauge)
	queueWait     stats.ExpHistogram // microseconds from enqueue to slot grant

	// Wire-protocol series (the v2 binary protocol and the prepared-
	// statement handles of DESIGN.md §12). Connections are counted per
	// negotiated protocol; frames/flushes expose the v2 writer's batch
	// ratio; handles is the open prepared-statement gauge.
	connsV1       atomic.Int64 // connections that spoke v1 newline-JSON
	connsV2       atomic.Int64 // connections that negotiated v2 binary frames
	framesIn      atomic.Int64 // v2 request frames decoded
	framesOut     atomic.Int64 // v2 response frames written
	flushes       atomic.Int64 // v2 writer flushes (framesOut/flushes = batch ratio)
	badFrames     atomic.Int64 // undecodable or unknown-type frames answered bad_request
	prepares      atomic.Int64 // prepare commands served
	preparedExecs atomic.Int64 // exec commands served through a handle
	handles       atomic.Int64 // open prepared-statement handles (gauge)
}

// NewAdmission returns a zeroed admission metrics block.
func NewAdmission() *Admission { return &Admission{} }

// ConnOpened notes an accepted connection.
func (a *Admission) ConnOpened() { a.conns.Add(1); a.connsTotal.Add(1) }

// ConnClosed notes a connection leaving.
func (a *Admission) ConnClosed() { a.conns.Add(-1) }

// ConnRejected notes a connection refused at the connection cap.
func (a *Admission) ConnRejected() { a.connsRejected.Add(1) }

// QueueEnter notes a request joining the admission wait queue and
// returns the new depth (the shed decision input).
func (a *Admission) QueueEnter() int64 { return a.queued.Add(1) }

// QueueLeave notes a request leaving the wait queue (admitted,
// rejected, or expired).
func (a *Admission) QueueLeave() { a.queued.Add(-1) }

// Queued returns the current admission queue depth.
func (a *Admission) Queued() int64 { return a.queued.Load() }

// ObserveAdmitted records a request winning an execution slot after
// waiting d in the queue (zero for the uncontended fast path).
func (a *Admission) ObserveAdmitted(d time.Duration) {
	a.admitted.Add(1)
	a.queueWait.Observe(d.Microseconds())
}

// ObserveShed records a request rejected with the typed overload error.
func (a *Admission) ObserveShed() { a.shed.Add(1) }

// ObserveDrained records a request rejected because the server is
// draining.
func (a *Admission) ObserveDrained() { a.drained.Add(1) }

// ObserveTooLarge records an oversized request line that was answered
// with the typed too-large error and resynced past.
func (a *Admission) ObserveTooLarge() { a.tooLarge.Add(1) }

// ObserveDeadlineExpired records a request whose deadline passed before
// it won an execution slot.
func (a *Admission) ObserveDeadlineExpired() { a.expired.Add(1) }

// Shed returns the shed counter (tests and the overload bench read it).
func (a *Admission) Shed() int64 { return a.shed.Load() }

// ObserveProtoConn records a connection's negotiated wire protocol.
func (a *Admission) ObserveProtoConn(v2 bool) {
	if v2 {
		a.connsV2.Add(1)
	} else {
		a.connsV1.Add(1)
	}
}

// ObserveFrameIn records one decoded v2 request frame.
func (a *Admission) ObserveFrameIn() { a.framesIn.Add(1) }

// ObserveFrameOut records one written v2 response frame.
func (a *Admission) ObserveFrameOut() { a.framesOut.Add(1) }

// ObserveFlush records one v2 writer flush (possibly covering many
// coalesced frames).
func (a *Admission) ObserveFlush() { a.flushes.Add(1) }

// ObserveBadFrame records a frame that failed to decode (or carried an
// unknown type byte) and was answered with a typed bad_request.
func (a *Admission) ObserveBadFrame() { a.badFrames.Add(1) }

// ObservePrepare records a served prepare command and the new handle.
func (a *Admission) ObservePrepare() { a.prepares.Add(1); a.handles.Add(1) }

// ObserveStmtClosed records a prepared handle being released (an
// explicit close or its connection going away).
func (a *Admission) ObserveStmtClosed(n int64) { a.handles.Add(-n) }

// ObservePreparedExec records an exec command served through a handle.
func (a *Admission) ObservePreparedExec() { a.preparedExecs.Add(1) }

// Snapshot captures the admission series.
func (a *Admission) Snapshot() AdmissionSnapshot {
	return AdmissionSnapshot{
		Conns:           a.conns.Load(),
		ConnsTotal:      a.connsTotal.Load(),
		ConnsRejected:   a.connsRejected.Load(),
		Admitted:        a.admitted.Load(),
		Shed:            a.shed.Load(),
		Drained:         a.drained.Load(),
		TooLarge:        a.tooLarge.Load(),
		DeadlineExpired: a.expired.Load(),
		Queued:          a.queued.Load(),
		QueueWait:       latencySnapshot(&a.queueWait),
		Wire: WireSnapshot{
			ConnsV1:       a.connsV1.Load(),
			ConnsV2:       a.connsV2.Load(),
			FramesIn:      a.framesIn.Load(),
			FramesOut:     a.framesOut.Load(),
			Flushes:       a.flushes.Load(),
			BadFrames:     a.badFrames.Load(),
			Prepares:      a.prepares.Load(),
			PreparedExecs: a.preparedExecs.Load(),
			Handles:       a.handles.Load(),
		},
	}
}

// Registry holds the controller-level metrics that are not tied to one
// backend: the ROWA fan-out width histogram and the fault-tolerance
// series (read retries, unavailable requests, redo-log appends, and
// recovery catch-up times).
type Registry struct {
	fanout      stats.ExpHistogram
	retries     atomic.Int64
	unavailable atomic.Int64
	redoAppends atomic.Int64
	catchup     stats.ExpHistogram // milliseconds

	// preparedReroutes counts prepared statements re-resolving their
	// cached route after a routing-generation bump.
	preparedReroutes atomic.Int64

	// Group-commit series: per-round batch sizes and per-update commit
	// wait (submit to round dispatch).
	groupBatch stats.ExpHistogram // updates per round
	groupWait  stats.ExpHistogram // microseconds

	// Live-migration series.
	migRuns       atomic.Int64
	migAborts     atomic.Int64
	migTables     atomic.Int64
	migCopiedRows atomic.Int64
	migLoadedRows atomic.Int64
	migDelta      atomic.Int64
	cutover       stats.ExpHistogram // microseconds
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// ObserveFanout records the replica count one ROWA update fanned out to.
func (r *Registry) ObserveFanout(width int) { r.fanout.Observe(int64(width)) }

// ObserveRetry records one read retry (an attempt after the first).
func (r *Registry) ObserveRetry() { r.retries.Add(1) }

// ObserveUnavailable records a request that found no live replica.
func (r *Registry) ObserveUnavailable() { r.unavailable.Add(1) }

// ObserveRedoAppend records one update diverted to a Down backend's
// redo log.
func (r *Registry) ObserveRedoAppend() { r.redoAppends.Add(1) }

// ObservePreparedReroute records a prepared statement re-resolving its
// route after a routing-generation bump (installed allocation, live
// cutover, or DDL).
func (r *Registry) ObservePreparedReroute() { r.preparedReroutes.Add(1) }

// PreparedReroutes returns the prepared-route recomputation count.
func (r *Registry) PreparedReroutes() int64 { return r.preparedReroutes.Load() }

// ObserveCatchUp records one completed recovery and its catch-up time.
func (r *Registry) ObserveCatchUp(d time.Duration) { r.catchup.Observe(d.Milliseconds()) }

// ObserveGroupRound records one committed group round and the number of
// updates it admitted.
func (r *Registry) ObserveGroupRound(size int) { r.groupBatch.Observe(int64(size)) }

// ObserveGroupWait records one update's wait from submission to its
// round's dispatch — the latency cost of batching.
func (r *Registry) ObserveGroupWait(d time.Duration) { r.groupWait.Observe(d.Microseconds()) }

// GroupCommit captures the group-commit series.
func (r *Registry) GroupCommit() GroupCommitSnapshot {
	return GroupCommitSnapshot{
		Rounds:     r.groupBatch.Count(),
		Updates:    r.groupWait.Count(),
		MeanBatch:  r.groupBatch.Mean(),
		MaxBatch:   r.groupBatch.Max(),
		MeanWaitUS: r.groupWait.Mean(),
		MaxWaitUS:  r.groupWait.Max(),
	}
}

// ObserveMigrationStart records a live migration beginning.
func (r *Registry) ObserveMigrationStart() { r.migRuns.Add(1) }

// ObserveMigrationAbort records a live migration that failed (cleanly —
// the cluster kept its old routing).
func (r *Registry) ObserveMigrationAbort() { r.migAborts.Add(1) }

// ObserveMigrationTable records one table cut over by a live migration
// and the rows it moved; loaded marks a loader fetch rather than a
// replica-to-replica copy.
func (r *Registry) ObserveMigrationTable(rows int64, loaded bool) {
	r.migTables.Add(1)
	if loaded {
		r.migLoadedRows.Add(rows)
	} else {
		r.migCopiedRows.Add(rows)
	}
}

// ObserveMigrationDelta records captured concurrent updates replayed
// into an in-flight table.
func (r *Registry) ObserveMigrationDelta(n int) { r.migDelta.Add(int64(n)) }

// ObserveCutoverPause records one cutover barrier hold — the only
// moment a live migration blocks foreground updates.
func (r *Registry) ObserveCutoverPause(d time.Duration) { r.cutover.Observe(d.Microseconds()) }

// Migration captures the live-migration series.
func (r *Registry) Migration() MigrationSnapshot {
	return MigrationSnapshot{
		Runs:          r.migRuns.Load(),
		Aborts:        r.migAborts.Load(),
		Tables:        r.migTables.Load(),
		CopiedRows:    r.migCopiedRows.Load(),
		LoadedRows:    r.migLoadedRows.Load(),
		DeltaReplayed: r.migDelta.Load(),
		Cutovers:      r.cutover.Count(),
		MeanCutoverUS: r.cutover.Mean(),
		MaxCutoverUS:  r.cutover.Max(),
	}
}

// Fanout captures the fan-out series.
func (r *Registry) Fanout() FanoutSnapshot {
	return FanoutSnapshot{
		Writes:    r.fanout.Count(),
		MeanWidth: r.fanout.Mean(),
		MaxWidth:  r.fanout.Max(),
	}
}

// Reliability captures the fault-tolerance series.
func (r *Registry) Reliability() ReliabilitySnapshot {
	return ReliabilitySnapshot{
		Retries:       r.retries.Load(),
		Unavailable:   r.unavailable.Load(),
		RedoAppends:   r.redoAppends.Load(),
		Catchups:      r.catchup.Count(),
		MeanCatchupMS: r.catchup.Mean(),
		MaxCatchupMS:  r.catchup.Max(),
	}
}

// LatencySnapshot is the wire form of a latency histogram, in
// microseconds. Percentiles are upper-bound estimates from
// power-of-two buckets (exact within 2x).
type LatencySnapshot struct {
	Count  int64   `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  int64   `json:"p50_us"`
	P95US  int64   `json:"p95_us"`
	P99US  int64   `json:"p99_us"`
	MaxUS  int64   `json:"max_us"`
}

func latencySnapshot(h *stats.ExpHistogram) LatencySnapshot {
	return LatencySnapshot{
		Count:  h.Count(),
		MeanUS: h.Mean(),
		P50US:  h.Quantile(0.50),
		P95US:  h.Quantile(0.95),
		P99US:  h.Quantile(0.99),
		MaxUS:  h.Max(),
	}
}

// BackendSnapshot is the wire form of one backend's counters.
type BackendSnapshot struct {
	Name         string          `json:"name"`
	State        string          `json:"state,omitempty"`
	Reads        int64           `json:"reads"`
	Writes       int64           `json:"writes"`
	Errors       int64           `json:"errors"`
	Pending      int64           `json:"pending"`
	Failovers    int64           `json:"failovers,omitempty"`
	// Epoch is the backend engine's published read epoch — one per
	// committed round (or standalone write). Replicas that applied the
	// same rounds report comparable advancement.
	Epoch        int64           `json:"epoch"`
	ReadLatency  LatencySnapshot `json:"read_latency"`
	WriteLatency LatencySnapshot `json:"write_latency"`
	// Planner reports the backend engine's query-planner counters.
	Planner PlannerSnapshot `json:"planner"`
}

// PlannerSnapshot is the wire form of a sqlmini engine's query-planner
// counters: plan-cache traffic, invalidation/eviction churn, resident
// plans, and join-ordering outcomes (how many multi-table plans were
// built and how many ended up reordered away from the SQL text's join
// order). On the top-level Snapshot it is the sum over all backends.
type PlannerSnapshot struct {
	PlanHits          int64 `json:"plan_hits"`
	PlanMisses        int64 `json:"plan_misses"`
	PlanInvalidations int64 `json:"plan_invalidations"`
	PlanEvictions     int64 `json:"plan_evictions"`
	PlanEntries       int64 `json:"plan_entries"`
	JoinPlans         int64 `json:"join_plans"`
	JoinReordered     int64 `json:"join_reordered"`
	// PreparedReroutes counts prepared statements that re-resolved
	// their cached route after a routing-generation bump. Cluster-level
	// (per-backend snapshots report zero); filled by Cluster.Metrics.
	PreparedReroutes int64 `json:"prepared_reroutes,omitempty"`
}

// Add accumulates another backend's planner counters (the cluster-wide
// rollup).
func (p *PlannerSnapshot) Add(o PlannerSnapshot) {
	p.PlanHits += o.PlanHits
	p.PlanMisses += o.PlanMisses
	p.PlanInvalidations += o.PlanInvalidations
	p.PlanEvictions += o.PlanEvictions
	p.PlanEntries += o.PlanEntries
	p.JoinPlans += o.JoinPlans
	p.JoinReordered += o.JoinReordered
}

// FanoutSnapshot summarizes ROWA fan-out widths.
type FanoutSnapshot struct {
	Writes    int64   `json:"writes"`
	MeanWidth float64 `json:"mean_width"`
	MaxWidth  int64   `json:"max_width"`
}

// ReliabilitySnapshot summarizes the fault-tolerance series: read
// retries, requests that found no live replica, updates diverted to
// redo logs, and recovery catch-up times.
type ReliabilitySnapshot struct {
	Retries       int64   `json:"retries"`
	Unavailable   int64   `json:"unavailable"`
	RedoAppends   int64   `json:"redo_appends"`
	Catchups      int64   `json:"catchups"`
	MeanCatchupMS float64 `json:"mean_catchup_ms"`
	MaxCatchupMS  int64   `json:"max_catchup_ms"`
}

// MigrationSnapshot summarizes the live-migration series: runs and
// clean aborts, tables and rows moved, delta entries replayed into
// in-flight tables, and the cutover pause histogram.
type MigrationSnapshot struct {
	Runs          int64   `json:"runs"`
	Aborts        int64   `json:"aborts"`
	Tables        int64   `json:"tables"`
	CopiedRows    int64   `json:"copied_rows"`
	LoadedRows    int64   `json:"loaded_rows"`
	DeltaReplayed int64   `json:"delta_replayed"`
	Cutovers      int64   `json:"cutovers"`
	MeanCutoverUS float64 `json:"mean_cutover_us"`
	MaxCutoverUS  int64   `json:"max_cutover_us"`
}

// GroupCommitSnapshot summarizes the group-commit series: committed
// rounds, updates that rode them, batch sizes, and per-update commit
// wait.
type GroupCommitSnapshot struct {
	Rounds     int64   `json:"rounds"`
	Updates    int64   `json:"updates"`
	MeanBatch  float64 `json:"mean_batch"`
	MaxBatch   int64   `json:"max_batch"`
	MeanWaitUS float64 `json:"mean_wait_us"`
	MaxWaitUS  int64   `json:"max_wait_us"`
}

// AdmissionSnapshot summarizes the server edge's overload-protection
// series: connection counts, admitted/shed/drained requests, oversized
// lines, queued-past-deadline expiries, the queue-depth gauge, and the
// queue-wait histogram.
type AdmissionSnapshot struct {
	Conns           int64           `json:"conns"`
	ConnsTotal      int64           `json:"conns_total"`
	ConnsRejected   int64           `json:"conns_rejected"`
	Admitted        int64           `json:"admitted"`
	Shed            int64           `json:"shed"`
	Drained         int64           `json:"drained"`
	TooLarge        int64           `json:"too_large"`
	DeadlineExpired int64           `json:"deadline_expired"`
	Queued          int64           `json:"queued"`
	QueueWait       LatencySnapshot `json:"queue_wait"`
	Wire            WireSnapshot    `json:"wire"`
}

// WireSnapshot summarizes the wire-protocol series: connections per
// negotiated protocol, v2 frame and flush counts (their ratio is the
// response batch factor), rejected frames, and the prepared-statement
// handle traffic.
type WireSnapshot struct {
	ConnsV1       int64 `json:"conns_v1"`
	ConnsV2       int64 `json:"conns_v2"`
	FramesIn      int64 `json:"frames_in"`
	FramesOut     int64 `json:"frames_out"`
	Flushes       int64 `json:"flushes"`
	BadFrames     int64 `json:"bad_frames"`
	Prepares      int64 `json:"prepares"`
	PreparedExecs int64 `json:"prepared_execs"`
	Handles       int64 `json:"handles"`
}

// Snapshot is the full metrics export: one entry per backend plus the
// controller-level fan-out, reliability, group-commit, and migration
// series. Admission is filled in by the serving tier (the cluster has
// no edge of its own) and omitted when the snapshot comes straight
// from a cluster.
type Snapshot struct {
	Policy      string              `json:"policy,omitempty"`
	Backends    []BackendSnapshot   `json:"backends"`
	Fanout      FanoutSnapshot      `json:"rowa_fanout"`
	Reliability ReliabilitySnapshot `json:"reliability"`
	GroupCommit GroupCommitSnapshot `json:"group_commit"`
	Migration   MigrationSnapshot   `json:"migration"`
	Admission   *AdmissionSnapshot  `json:"admission,omitempty"`
	// Planner sums the per-backend planner counters.
	Planner PlannerSnapshot `json:"planner"`
}
