package sqlmini

import (
	"strings"
	"testing"
)

// TestParserStatements exercises the grammar corners not reached by the
// executor tests.
func TestParserAccepts(t *testing.T) {
	good := []string{
		`SELECT 1 + 2 FROM t`,
		`SELECT a FROM t;`,
		`SELECT a AS x, b y FROM t`,
		`SELECT * FROM t WHERE a = 1 AND NOT b = 2 OR c = 3`,
		`SELECT a FROM t WHERE a NOT LIKE 'x%'`,
		`SELECT a FROM t WHERE a IS NOT NULL AND b IS NULL`,
		`SELECT COUNT(DISTINCT a) FROM t`,
		`SELECT -a FROM t WHERE -a < -1`,
		`SELECT a FROM t WHERE a IN (1) OR a NOT IN (2, 3)`,
		`SELECT a FROM t1 t INNER JOIN t2 u ON t.a = u.b`,
		`INSERT INTO t (a) VALUES (1), (2), (3)`,
		`UPDATE t SET a = 1, b = 'x' WHERE c BETWEEN 1 AND 2`,
		`DELETE FROM t`,
		`CREATE TABLE t (a INTEGER PRIMARY KEY, b REAL, c VARCHAR(10))`,
		`DROP TABLE t`,
		`SELECT a FROM t ORDER BY a ASC, b DESC LIMIT 5`,
		`SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1`,
		`SELECT a FROM t WHERE a = 1.5e-3`,
		`SELECT a FROM t -- comment at end`,
	}
	for _, sql := range good {
		if _, err := Parse(sql); err != nil {
			t.Errorf("%s: %v", sql, err)
		}
	}
}

func TestParserRejects(t *testing.T) {
	bad := []string{
		``,
		`SELECT`,
		`SELECT FROM t`,
		`SELECT a`,
		`SELECT a FROM`,
		`SELECT a FROM t WHERE`,
		`SELECT a FROM t GROUP`,
		`SELECT a FROM t ORDER a`,
		`SELECT a FROM t LIMIT x`,
		`SELECT a FROM t LIMIT -1`,
		`SELECT a FROM t extra garbage somewhere ???`,
		`SELECT a FROM t1 JOIN ON a = b`,
		`SELECT a FROM t1 JOIN t2`,
		`INSERT t VALUES (1)`,
		`INSERT INTO t`,
		`INSERT INTO t VALUES 1`,
		`INSERT INTO t VALUES (1`,
		`UPDATE t a = 1`,
		`UPDATE t SET a`,
		`DELETE t`,
		`CREATE t (a INT)`,
		`CREATE TABLE t`,
		`CREATE TABLE t (a)`,
		`CREATE TABLE t (a INT PRIMARY)`,
		`CREATE TABLE t (a VARCHAR(x))`,
		`DROP t`,
		`SELECT a FROM t WHERE a BETWEEN 1`,
		`SELECT a FROM t WHERE a IN 1`,
		`SELECT a FROM t WHERE a IS 1`,
		`SELECT a FROM t WHERE (a = 1`,
		`SELECT SUM( FROM t`,
		`SELECT 99999999999999999999999999 FROM t`,
		`SELECT 'open string FROM t`,
		"SELECT \x01 FROM t",
		`GRANT ALL ON t`,
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("%q: no error", sql)
		}
	}
}

func TestParserNotLookahead(t *testing.T) {
	// "NOT" followed by something other than BETWEEN/IN/LIKE restarts
	// as a plain comparison end.
	st, err := Parse(`SELECT a FROM t WHERE a = 1 AND NOT b = 2`)
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(*SelectStmt)
	bo, ok := sel.Where.(*BinOp)
	if !ok || bo.Op != "AND" {
		t.Fatalf("where = %#v", sel.Where)
	}
	if _, ok := bo.R.(*UnOp); !ok {
		t.Fatalf("right side not a NOT: %#v", bo.R)
	}
}

func TestLexerTokens(t *testing.T) {
	toks, err := lex(`SELECT a_1, 'it''s', 1.5, <= <> != -- done`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
		texts = append(texts, tk.text)
	}
	want := []string{"SELECT", "a_1", ",", "it's", ",", "1.5", ",", "<=", "<>", "!=", ""}
	if len(texts) != len(want) {
		t.Fatalf("tokens = %v", texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Fatalf("token %d = %q, want %q (all: %v)", i, texts[i], want[i], texts)
		}
	}
	if kinds[0] != tokKeyword || kinds[1] != tokIdent || kinds[3] != tokString || kinds[5] != tokFloat {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestAmbiguousColumn(t *testing.T) {
	e := New()
	mustExec(t, e, `CREATE TABLE t1 (id INT PRIMARY KEY, v INT)`)
	mustExec(t, e, `CREATE TABLE t2 (id2 INT PRIMARY KEY, v INT)`)
	mustExec(t, e, `INSERT INTO t1 VALUES (1, 10)`)
	mustExec(t, e, `INSERT INTO t2 VALUES (1, 20)`)
	// Unqualified v is ambiguous across the join.
	if _, err := e.Exec(`SELECT v FROM t1 JOIN t2 ON id = id2`); err == nil ||
		!strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("ambiguous column not detected: %v", err)
	}
	// Qualified works.
	r := mustExec(t, e, `SELECT t2.v FROM t1 JOIN t2 ON id = id2`)
	if r.Rows[0][0].I != 20 {
		t.Fatalf("rows = %v", r.Rows)
	}
}

func TestOrderByInputColumn(t *testing.T) {
	e := newTestDB(t)
	// ORDER BY a column that is not projected.
	r := mustExec(t, e, `SELECT name FROM item ORDER BY price DESC LIMIT 2`)
	if r.Rows[0][0].S != "date" || r.Rows[1][0].S != "cherry" {
		t.Fatalf("rows = %v", r.Rows)
	}
	// ORDER BY an expression over input columns.
	r = mustExec(t, e, `SELECT name FROM item ORDER BY price * stock DESC LIMIT 1`)
	if r.Rows[0][0].S != "apple" { // 1.5*100 = 150 is the max
		t.Fatalf("rows = %v", r.Rows)
	}
	// ORDER BY an aggregate that is not a named output column fails.
	if _, err := e.Exec(`SELECT name FROM item GROUP BY name ORDER BY SUM(price)`); err == nil {
		t.Fatal("unnamed aggregate order accepted")
	}
}

func TestOrderByGroupSampleColumn(t *testing.T) {
	e := newTestDB(t)
	// Order grouped output by the grouped (non-projected via alias)
	// column evaluated on the group sample row.
	r := mustExec(t, e, `SELECT COUNT(*) AS n FROM orders GROUP BY cust ORDER BY cust`)
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %v", r.Rows)
	}
	// ann(2), bob(1), cat(1) ordered by cust.
	if r.Rows[0][0].I != 2 {
		t.Fatalf("first group = %v", r.Rows[0])
	}
}

func TestDistinctWithOrderByInput(t *testing.T) {
	e := newTestDB(t)
	r := mustExec(t, e, `SELECT DISTINCT cust FROM orders ORDER BY oid`)
	// DISTINCT keeps the first-seen input row alignment; ordering by
	// oid (an input column) must not error.
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %v", r.Rows)
	}
}
