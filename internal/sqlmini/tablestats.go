package sqlmini

//qcpa:deterministic — planner statistics feed the cost model; estimates
// must be bit-identical across runs and worker counts.

// Per-view table statistics for the query planner (plan.go).
//
// Statistics are maintained "incrementally as epochs publish" by riding
// the copy-on-write views: publishLocked reuses the previous tableView
// for every table the epoch did not touch, so an untouched table keeps
// its computed statistics across any number of epochs, while a touched
// table gets a fresh view — and therefore fresh (lazily recomputed)
// statistics — at the moment its data changes. No separate invalidation
// protocol is needed.
//
// Estimates are deterministic: the sample is a prefix of the view's
// immutable row slice, so the same data always yields the same numbers
// regardless of timing, worker count, or map-iteration order.

import "sync"

// statsSampleRows bounds the rows examined per NDV estimate. A prefix
// (not a random sample) keeps the estimate deterministic; 2048 rows is
// enough to separate "key-like" from "category-like" columns, which is
// all the join-order cost model needs.
const statsSampleRows = 2048

// ndvEstimate returns an estimate of the number of distinct values in
// the view's column col, computed lazily and cached on the view. The
// result is always >= 1.
func (tv *tableView) ndvEstimate(col int) float64 {
	n := len(tv.rows)
	if n == 0 {
		return 1
	}
	// The primary key is unique by construction.
	if tv.t != nil && col == tv.t.pkCol {
		return float64(n)
	}
	tv.stats.mu.Lock()
	defer tv.stats.mu.Unlock()
	if tv.stats.ndv == nil {
		tv.stats.ndv = make([]float64, len(tv.t.Cols))
	}
	if v := tv.stats.ndv[col]; v > 0 {
		return v
	}
	v := estimateNDV(tv.rows, col)
	tv.stats.ndv[col] = v
	return v
}

// tableStats caches lazily computed per-column statistics for one
// immutable tableView. The mutex serializes the lazy fill among
// concurrent readers of the same view, mirroring secondaryIndex.
//
//qcpa:lazycache deterministic lazy fill from immutable rows, serialized by mu
type tableStats struct {
	mu  sync.Mutex
	ndv []float64 // per column; 0 = not yet computed
}

// estimateNDV counts distinct values in a deterministic prefix sample
// and extrapolates to the full row count.
func estimateNDV(rows []Row, col int) float64 {
	n := len(rows)
	sample := n
	if sample > statsSampleRows {
		sample = statsSampleRows
	}
	seen := make(map[string]struct{}, sample)
	for i := 0; i < sample; i++ {
		seen[rows[i][col].key()] = struct{}{}
	}
	d := len(seen)
	if d < 1 {
		d = 1
	}
	est := float64(d)
	if n > sample {
		if d*4 >= sample*3 {
			// Mostly unique in the sample: scale linearly (key-like).
			est = float64(d) * float64(n) / float64(sample)
		}
		// Otherwise the domain saturates within the prefix
		// (category-like): keep the sampled distinct count.
	}
	if est > float64(n) {
		est = float64(n)
	}
	if est < 1 {
		est = 1
	}
	return est
}
