package sqlmini

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Table is an in-memory row store with an optional primary-key hash
// index.
type Table struct {
	Name    string
	Cols    []Column
	colIdx  map[string]int
	pkCol   int // -1 when no primary key
	rows    []Row
	pk      map[string]int // pk key() -> row index
	indexes []*secondaryIndex

	// Copy-on-write bookkeeping (see view.go). rowsShared/pkShared
	// report whether the current rows header / pk map is still shared
	// with a published read view; view caches the tableView cut at the
	// last publish (nil once the table is touched in a new epoch).
	rowsShared bool
	pkShared   bool
	view       *tableView
}

func newTable(name string, cols []Column) (*Table, error) {
	t := &Table{Name: name, Cols: cols, colIdx: make(map[string]int, len(cols)), pkCol: -1}
	for i, c := range cols {
		if _, dup := t.colIdx[c.Name]; dup {
			return nil, fmt.Errorf("sqlmini: duplicate column %q in table %q", c.Name, name)
		}
		t.colIdx[c.Name] = i
		if c.PrimaryKey {
			if t.pkCol >= 0 {
				return nil, fmt.Errorf("sqlmini: table %q has multiple primary keys", name)
			}
			t.pkCol = i
		}
	}
	if t.pkCol >= 0 {
		t.pk = make(map[string]int)
	}
	return t, nil
}

// NumRows returns the row count.
func (t *Table) NumRows() int { return len(t.rows) }

// ColumnIndex returns the index of a column, or -1.
func (t *Table) ColumnIndex(name string) int {
	if i, ok := t.colIdx[name]; ok {
		return i
	}
	return -1
}

// PrimaryKey returns the primary-key column name, or "".
func (t *Table) PrimaryKey() string {
	if t.pkCol < 0 {
		return ""
	}
	return t.Cols[t.pkCol].Name
}

// appendRow validates and stores a row.
func (t *Table) appendRow(r Row) error {
	if len(r) != len(t.Cols) {
		return fmt.Errorf("sqlmini: table %q expects %d values, got %d", t.Name, len(t.Cols), len(r))
	}
	for i := range r {
		v, err := coerce(r[i], t.Cols[i].Type)
		if err != nil {
			return fmt.Errorf("%w (column %q)", err, t.Cols[i].Name)
		}
		r[i] = v
	}
	if t.pkCol >= 0 {
		k := r[t.pkCol].key()
		if _, dup := t.pk[k]; dup {
			return fmt.Errorf("sqlmini: duplicate primary key %s in table %q", r[t.pkCol], t.Name)
		}
		t.pk[k] = len(t.rows)
	}
	t.rows = append(t.rows, r)
	return nil
}

// DataBytes approximates the stored size of the table in bytes (used by
// the allocation cost models).
func (t *Table) DataBytes() int64 {
	var per int64
	for _, c := range t.Cols {
		switch c.Type {
		case KindText:
			per += 24
		default:
			per += 8
		}
	}
	return per * int64(len(t.rows))
}

// Engine is an embedded single-node database instance. It is safe for
// concurrent use: SELECT runs lock-free against the latest published
// copy-on-write snapshot (see view.go), while writes take an exclusive
// lock (one writer at a time, mirroring the serial update application
// of the CDBS processing model) and publish a new read epoch on
// commit.
type Engine struct {
	mu     sync.RWMutex
	tables map[string]*Table
	// view is the latest published read snapshot; epochSeq and dirty
	// (both guarded by mu) drive publication — see view.go.
	view     atomic.Pointer[readView]
	epochSeq int64
	dirty    bool
	// fault is the optional fault injector (nil when absent); see
	// fault.go. Checked once per statement at the top of
	// ExecStmtContext.
	fault atomic.Pointer[Fault]
	// plans caches bound SELECT plans per normalized statement shape;
	// planGen is the cache generation, bumped by InvalidatePlans so
	// plans built against a pre-DDL schema can never be served after
	// it. See plan.go. Lock order: e.mu before plans.mu.
	plans   planCache
	planGen atomic.Int64
}

// New returns an empty engine.
func New() *Engine {
	e := &Engine{tables: make(map[string]*Table)}
	e.view.Store(&readView{tables: map[string]*tableView{}})
	return e
}

// Result is the outcome of executing a statement.
type Result struct {
	// Columns are the output column names of a SELECT.
	Columns []string
	// Rows are the result rows of a SELECT.
	Rows []Row
	// Affected is the number of rows written by INSERT/UPDATE/DELETE.
	Affected int
	// Scanned counts the rows examined while executing; the cluster
	// layer uses it as the work measure of a request.
	Scanned int64
}

// Exec parses and executes one SQL statement.
func (e *Engine) Exec(sql string) (*Result, error) {
	return e.ExecContext(context.Background(), sql)
}

// ExecContext parses and executes one SQL statement under a context
// (see ExecStmtContext for cancellation semantics).
func (e *Engine) ExecContext(ctx context.Context, sql string) (*Result, error) {
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return e.ExecStmtContext(ctx, st)
}

// ExecStmt executes a parsed statement (allowing callers to parse once
// and execute on many backends, as the cluster controller does).
func (e *Engine) ExecStmt(st Statement) (*Result, error) {
	return e.ExecStmtContext(context.Background(), st)
}

// ExecStmtContext executes a parsed statement under a context. Long
// SELECT scans observe cancellation between row batches and return
// ctx.Err(); they run lock-free against the latest published snapshot
// and never block (or are blocked by) writers. Writes check the
// context only before starting: once an update begins applying it runs
// to completion, because the cluster's ROWA replicas apply updates in
// a fixed global order and a mid-write abort on one replica would
// diverge the others. Each standalone write publishes its own read
// epoch; group-committed batches publish once per round (ApplyRound).
func (e *Engine) ExecStmtContext(ctx context.Context, st Statement) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := e.checkFault(); err != nil {
		return nil, err
	}
	if s, ok := st.(*SelectStmt); ok {
		return e.execSelect(ctx, s, e.loadView())
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	defer e.publishLocked()
	return e.execWriteLocked(st)
}

// Table returns the named table for bulk operations, or nil.
func (e *Engine) Table(name string) *Table {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.tables[name]
}

// Tables returns the table names in sorted order.
func (e *Engine) Tables() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.tables))
	for n := range e.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// CreateTable creates a table directly (bulk-load path).
func (e *Engine) CreateTable(name string, cols []Column) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.tables[name]; dup {
		return fmt.Errorf("sqlmini: table %q already exists", name)
	}
	t, err := newTable(name, cols)
	if err != nil {
		return err
	}
	e.tables[name] = t
	e.dirty = true
	e.InvalidatePlans()
	e.publishLocked()
	return nil
}

// BulkInsert appends rows without going through SQL (the cluster's
// data-loading path). Rows are validated and indexed like SQL inserts;
// the whole batch becomes readable in one published epoch.
func (e *Engine) BulkInsert(table string, rows []Row) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.tables[table]
	if !ok {
		return unknownTableError(table)
	}
	defer e.publishLocked()
	e.dirty = true
	t.prepareInsert()
	for _, r := range rows {
		cp := make(Row, len(r))
		copy(cp, r)
		if err := t.appendRow(cp); err != nil {
			return err
		}
	}
	return nil
}

// DataBytes approximates the total stored bytes across all tables.
func (e *Engine) DataBytes() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var total int64
	for _, t := range e.tables {
		total += t.DataBytes()
	}
	return total
}
