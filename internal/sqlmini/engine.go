package sqlmini

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Table is an in-memory row store with an optional primary-key hash
// index.
type Table struct {
	Name    string
	Cols    []Column
	colIdx  map[string]int
	pkCol   int // -1 when no primary key
	rows    []Row
	pk      map[string]int // pk key() -> row index
	indexes []*secondaryIndex
}

func newTable(name string, cols []Column) (*Table, error) {
	t := &Table{Name: name, Cols: cols, colIdx: make(map[string]int, len(cols)), pkCol: -1}
	for i, c := range cols {
		if _, dup := t.colIdx[c.Name]; dup {
			return nil, fmt.Errorf("sqlmini: duplicate column %q in table %q", c.Name, name)
		}
		t.colIdx[c.Name] = i
		if c.PrimaryKey {
			if t.pkCol >= 0 {
				return nil, fmt.Errorf("sqlmini: table %q has multiple primary keys", name)
			}
			t.pkCol = i
		}
	}
	if t.pkCol >= 0 {
		t.pk = make(map[string]int)
	}
	return t, nil
}

// NumRows returns the row count.
func (t *Table) NumRows() int { return len(t.rows) }

// ColumnIndex returns the index of a column, or -1.
func (t *Table) ColumnIndex(name string) int {
	if i, ok := t.colIdx[name]; ok {
		return i
	}
	return -1
}

// PrimaryKey returns the primary-key column name, or "".
func (t *Table) PrimaryKey() string {
	if t.pkCol < 0 {
		return ""
	}
	return t.Cols[t.pkCol].Name
}

// appendRow validates and stores a row.
func (t *Table) appendRow(r Row) error {
	if len(r) != len(t.Cols) {
		return fmt.Errorf("sqlmini: table %q expects %d values, got %d", t.Name, len(t.Cols), len(r))
	}
	for i := range r {
		v, err := coerce(r[i], t.Cols[i].Type)
		if err != nil {
			return fmt.Errorf("%w (column %q)", err, t.Cols[i].Name)
		}
		r[i] = v
	}
	if t.pkCol >= 0 {
		k := r[t.pkCol].key()
		if _, dup := t.pk[k]; dup {
			return fmt.Errorf("sqlmini: duplicate primary key %s in table %q", r[t.pkCol], t.Name)
		}
		t.pk[k] = len(t.rows)
	}
	t.rows = append(t.rows, r)
	t.markDirty()
	return nil
}

// DataBytes approximates the stored size of the table in bytes (used by
// the allocation cost models).
func (t *Table) DataBytes() int64 {
	var per int64
	for _, c := range t.Cols {
		switch c.Type {
		case KindText:
			per += 24
		default:
			per += 8
		}
	}
	return per * int64(len(t.rows))
}

// Engine is an embedded single-node database instance. It is safe for
// concurrent use: reads take a shared lock, writes an exclusive lock
// (one writer at a time, mirroring the serial update application of the
// CDBS processing model).
type Engine struct {
	mu     sync.RWMutex
	tables map[string]*Table
	// fault is the optional fault injector (nil when absent); see
	// fault.go. Checked once per statement at the top of
	// ExecStmtContext.
	fault atomic.Pointer[Fault]
}

// New returns an empty engine.
func New() *Engine {
	return &Engine{tables: make(map[string]*Table)}
}

// Result is the outcome of executing a statement.
type Result struct {
	// Columns are the output column names of a SELECT.
	Columns []string
	// Rows are the result rows of a SELECT.
	Rows []Row
	// Affected is the number of rows written by INSERT/UPDATE/DELETE.
	Affected int
	// Scanned counts the rows examined while executing; the cluster
	// layer uses it as the work measure of a request.
	Scanned int64
}

// Exec parses and executes one SQL statement.
func (e *Engine) Exec(sql string) (*Result, error) {
	return e.ExecContext(context.Background(), sql)
}

// ExecContext parses and executes one SQL statement under a context
// (see ExecStmtContext for cancellation semantics).
func (e *Engine) ExecContext(ctx context.Context, sql string) (*Result, error) {
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return e.ExecStmtContext(ctx, st)
}

// ExecStmt executes a parsed statement (allowing callers to parse once
// and execute on many backends, as the cluster controller does).
func (e *Engine) ExecStmt(st Statement) (*Result, error) {
	return e.ExecStmtContext(context.Background(), st)
}

// ExecStmtContext executes a parsed statement under a context. Long
// SELECT scans observe cancellation between row batches and return
// ctx.Err(). Writes check the context only before starting: once an
// update begins applying it runs to completion, because the cluster's
// ROWA replicas apply updates in a fixed global order and a mid-write
// abort on one replica would diverge the others.
func (e *Engine) ExecStmtContext(ctx context.Context, st Statement) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := e.checkFault(); err != nil {
		return nil, err
	}
	switch s := st.(type) {
	case *SelectStmt:
		e.mu.RLock()
		defer e.mu.RUnlock()
		return e.execSelect(ctx, s)
	case *InsertStmt:
		e.mu.Lock()
		defer e.mu.Unlock()
		return e.execInsert(s)
	case *UpdateStmt:
		e.mu.Lock()
		defer e.mu.Unlock()
		return e.execUpdate(s)
	case *DeleteStmt:
		e.mu.Lock()
		defer e.mu.Unlock()
		return e.execDelete(s)
	case *CreateTableStmt:
		e.mu.Lock()
		defer e.mu.Unlock()
		if _, dup := e.tables[s.Table]; dup {
			return nil, fmt.Errorf("sqlmini: table %q already exists", s.Table)
		}
		t, err := newTable(s.Table, s.Columns)
		if err != nil {
			return nil, err
		}
		e.tables[s.Table] = t
		return &Result{}, nil
	case *DropTableStmt:
		e.mu.Lock()
		defer e.mu.Unlock()
		if _, ok := e.tables[s.Table]; !ok {
			return nil, unknownTableError(s.Table)
		}
		delete(e.tables, s.Table)
		return &Result{}, nil
	}
	return nil, fmt.Errorf("sqlmini: unsupported statement %T", st)
}

// Table returns the named table for bulk operations, or nil.
func (e *Engine) Table(name string) *Table {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.tables[name]
}

// Tables returns the table names in sorted order.
func (e *Engine) Tables() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.tables))
	for n := range e.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// CreateTable creates a table directly (bulk-load path).
func (e *Engine) CreateTable(name string, cols []Column) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.tables[name]; dup {
		return fmt.Errorf("sqlmini: table %q already exists", name)
	}
	t, err := newTable(name, cols)
	if err != nil {
		return err
	}
	e.tables[name] = t
	return nil
}

// BulkInsert appends rows without going through SQL (the cluster's
// data-loading path). Rows are validated and indexed like SQL inserts.
func (e *Engine) BulkInsert(table string, rows []Row) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.tables[table]
	if !ok {
		return unknownTableError(table)
	}
	for _, r := range rows {
		cp := make(Row, len(r))
		copy(cp, r)
		if err := t.appendRow(cp); err != nil {
			return err
		}
	}
	return nil
}

// DataBytes approximates the total stored bytes across all tables.
func (e *Engine) DataBytes() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var total int64
	for _, t := range e.tables {
		total += t.DataBytes()
	}
	return total
}
