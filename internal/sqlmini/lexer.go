package sqlmini

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token types.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokInt
	tokFloat
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string // keywords upper-cased, identifiers lower-cased
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"ORDER": true, "LIMIT": true, "ASC": true, "DESC": true, "AS": true,
	"JOIN": true, "INNER": true, "ON": true, "AND": true, "OR": true,
	"NOT": true, "IN": true, "BETWEEN": true, "LIKE": true, "IS": true,
	"NULL": true, "INSERT": true, "INTO": true, "VALUES": true,
	"UPDATE": true, "SET": true, "DELETE": true, "CREATE": true,
	"TABLE": true, "PRIMARY": true, "KEY": true, "INT": true,
	"INTEGER": true, "FLOAT": true, "REAL": true, "TEXT": true,
	"VARCHAR": true, "DISTINCT": true, "COUNT": true, "SUM": true,
	"AVG": true, "MIN": true, "MAX": true, "DROP": true, "HAVING": true,
}

// lex tokenizes a SQL string.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && src[i+1] == '-': // line comment
			for i < n && src[i] != '\n' {
				i++
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < n && (isIdentChar(src[j])) {
				j++
			}
			word := src[i:j]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{tokKeyword, up, i})
			} else {
				toks = append(toks, token{tokIdent, strings.ToLower(word), i})
			}
			i = j
		case c >= '0' && c <= '9' || (c == '.' && i+1 < n && src[i+1] >= '0' && src[i+1] <= '9'):
			j := i
			isFloat := false
			for j < n && (src[j] >= '0' && src[j] <= '9' || src[j] == '.') {
				if src[j] == '.' {
					isFloat = true
				}
				j++
			}
			if j < n && (src[j] == 'e' || src[j] == 'E') {
				isFloat = true
				j++
				if j < n && (src[j] == '+' || src[j] == '-') {
					j++
				}
				for j < n && src[j] >= '0' && src[j] <= '9' {
					j++
				}
			}
			k := tokInt
			if isFloat {
				k = tokFloat
			}
			toks = append(toks, token{k, src[i:j], i})
			i = j
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for {
				if j >= n {
					return nil, fmt.Errorf("sqlmini: unterminated string at %d", i)
				}
				if src[j] == '\'' {
					if j+1 < n && src[j+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(src[j])
				j++
			}
			toks = append(toks, token{tokString, sb.String(), i})
			i = j + 1
		default:
			// Multi-char operators first.
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			switch two {
			case "<=", ">=", "<>", "!=":
				toks = append(toks, token{tokSymbol, two, i})
				i += 2
				continue
			}
			switch c {
			case '=', '<', '>', '+', '-', '*', '/', '(', ')', ',', '.', ';', '%':
				toks = append(toks, token{tokSymbol, string(c), i})
				i++
			default:
				return nil, fmt.Errorf("sqlmini: unexpected character %q at %d", c, i)
			}
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func isIdentChar(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}
