package sqlmini

import (
	"fmt"
	"sort"
)

// Predicate is a simple comparison of a column against a literal,
// extracted for horizontal (range) classification.
type Predicate struct {
	Table  string
	Column string
	Op     string // = < <= > >= <> BETWEEN (Lo/Hi set)
	Value  Value
	Hi     Value // upper bound for BETWEEN
}

// QueryInfo is the static analysis of a statement used by query
// classification (Section 3.1): the referenced tables and columns and
// whether the statement reads or writes.
type QueryInfo struct {
	// Write is true for INSERT/UPDATE/DELETE.
	Write bool
	// Tables lists the referenced table names, sorted.
	Tables []string
	// Columns lists referenced columns as "table.column", sorted. The
	// primary key of every referenced table is always included so that
	// column-based fragments allow lossless reconstruction (Section 3.1:
	// "they contain a candidate key").
	Columns []string
	// Predicates lists simple column-vs-literal comparisons for
	// horizontal classification.
	Predicates []Predicate
}

// Schema maps table names to column definitions; the engine and the
// workload generators both provide one.
type Schema map[string][]Column

// SchemaOf extracts the schema of an engine.
func SchemaOf(e *Engine) Schema {
	s := make(Schema)
	for _, name := range e.Tables() {
		t := e.Table(name)
		cols := make([]Column, len(t.Cols))
		copy(cols, t.Cols)
		s[name] = cols
	}
	return s
}

// Analyze parses and analyzes one SQL statement against a schema.
func Analyze(sql string, schema Schema) (*QueryInfo, error) {
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return AnalyzeStmt(st, schema)
}

// AnalyzeStmt analyzes a parsed statement against a schema.
func AnalyzeStmt(st Statement, schema Schema) (*QueryInfo, error) {
	a := &analyzer{
		schema:  schema,
		aliases: make(map[string]string),
		tables:  make(map[string]bool),
		columns: make(map[string]bool),
	}
	info := &QueryInfo{}
	switch s := st.(type) {
	case *SelectStmt:
		if err := a.addTable(s.Table, s.Alias); err != nil {
			return nil, err
		}
		for _, j := range s.Joins {
			if err := a.addTable(j.Table, j.Alias); err != nil {
				return nil, err
			}
		}
		for _, it := range s.Items {
			if it.Star {
				a.addAllColumns()
				continue
			}
			if err := a.walk(it.Expr); err != nil {
				return nil, err
			}
		}
		for _, j := range s.Joins {
			if err := a.walk(j.On); err != nil {
				return nil, err
			}
		}
		if s.Where != nil {
			if err := a.walk(s.Where); err != nil {
				return nil, err
			}
			a.extractPredicates(s.Where)
		}
		for _, g := range s.GroupBy {
			if err := a.walk(g); err != nil {
				return nil, err
			}
		}
		if s.Having != nil {
			if err := a.walk(s.Having); err != nil {
				return nil, err
			}
		}
		// ORDER BY may reference output aliases; referenced underlying
		// columns are already covered by the select items.
	case *InsertStmt:
		info.Write = true
		if err := a.addTable(s.Table, ""); err != nil {
			return nil, err
		}
		if len(s.Columns) == 0 {
			a.addAllColumns()
		} else {
			for _, c := range s.Columns {
				if err := a.addColumn("", c); err != nil {
					return nil, err
				}
			}
		}
	case *UpdateStmt:
		info.Write = true
		if err := a.addTable(s.Table, ""); err != nil {
			return nil, err
		}
		for _, set := range s.Set {
			if err := a.addColumn("", set.Column); err != nil {
				return nil, err
			}
			if err := a.walk(set.Expr); err != nil {
				return nil, err
			}
		}
		if s.Where != nil {
			if err := a.walk(s.Where); err != nil {
				return nil, err
			}
			a.extractPredicates(s.Where)
		}
	case *DeleteStmt:
		info.Write = true
		if err := a.addTable(s.Table, ""); err != nil {
			return nil, err
		}
		if s.Where != nil {
			if err := a.walk(s.Where); err != nil {
				return nil, err
			}
			a.extractPredicates(s.Where)
		}
	default:
		return nil, fmt.Errorf("sqlmini: cannot analyze %T", st)
	}

	// Always include primary keys of referenced tables.
	for tbl := range a.tables {
		for _, c := range a.schema[tbl] {
			if c.PrimaryKey {
				a.columns[tbl+"."+c.Name] = true
			}
		}
	}

	for tbl := range a.tables {
		info.Tables = append(info.Tables, tbl)
	}
	sort.Strings(info.Tables)
	for col := range a.columns {
		info.Columns = append(info.Columns, col)
	}
	sort.Strings(info.Columns)
	info.Predicates = a.preds
	return info, nil
}

type analyzer struct {
	schema  Schema
	aliases map[string]string // alias -> table
	tables  map[string]bool
	columns map[string]bool
	preds   []Predicate
}

func (a *analyzer) addTable(table, alias string) error {
	if _, ok := a.schema[table]; !ok {
		return fmt.Errorf("sqlmini: unknown table %q", table)
	}
	a.tables[table] = true
	a.aliases[table] = table
	if alias != "" {
		a.aliases[alias] = table
	}
	return nil
}

func (a *analyzer) addAllColumns() {
	for tbl := range a.tables {
		for _, c := range a.schema[tbl] {
			a.columns[tbl+"."+c.Name] = true
		}
	}
}

// resolveTable finds the table owning a (possibly unqualified) column.
func (a *analyzer) resolveTable(tableRef, column string) (string, error) {
	if tableRef != "" {
		tbl, ok := a.aliases[tableRef]
		if !ok {
			return "", fmt.Errorf("sqlmini: unknown table reference %q", tableRef)
		}
		return tbl, nil
	}
	found := ""
	for tbl := range a.tables {
		for _, c := range a.schema[tbl] {
			if c.Name == column {
				if found != "" && found != tbl {
					return "", fmt.Errorf("sqlmini: ambiguous column %q", column)
				}
				found = tbl
			}
		}
	}
	if found == "" {
		return "", fmt.Errorf("sqlmini: unknown column %q", column)
	}
	return found, nil
}

func (a *analyzer) addColumn(tableRef, column string) error {
	tbl, err := a.resolveTable(tableRef, column)
	if err != nil {
		return err
	}
	a.columns[tbl+"."+column] = true
	return nil
}

func (a *analyzer) walk(e Expr) error {
	switch x := e.(type) {
	case nil, *Lit:
		return nil
	case *ColRef:
		return a.addColumn(x.Table, x.Column)
	case *UnOp:
		return a.walk(x.E)
	case *BinOp:
		if err := a.walk(x.L); err != nil {
			return err
		}
		return a.walk(x.R)
	case *Between:
		if err := a.walk(x.E); err != nil {
			return err
		}
		if err := a.walk(x.Lo); err != nil {
			return err
		}
		return a.walk(x.Hi)
	case *InList:
		if err := a.walk(x.E); err != nil {
			return err
		}
		for _, le := range x.List {
			if err := a.walk(le); err != nil {
				return err
			}
		}
		return nil
	case *IsNull:
		return a.walk(x.E)
	case *Agg:
		if x.E != nil {
			return a.walk(x.E)
		}
		return nil
	}
	return fmt.Errorf("sqlmini: cannot analyze expression %T", e)
}

// extractPredicates collects top-level AND-connected column-vs-literal
// comparisons for horizontal classification.
func (a *analyzer) extractPredicates(e Expr) {
	switch x := e.(type) {
	case *BinOp:
		if x.Op == "AND" {
			a.extractPredicates(x.L)
			a.extractPredicates(x.R)
			return
		}
		switch x.Op {
		case "=", "<", "<=", ">", ">=", "<>":
			cr, crOK := x.L.(*ColRef)
			lit, litOK := x.R.(*Lit)
			op := x.Op
			if !crOK || !litOK {
				// literal op column: flip.
				cr, crOK = x.R.(*ColRef)
				lit, litOK = x.L.(*Lit)
				switch x.Op {
				case "<":
					op = ">"
				case "<=":
					op = ">="
				case ">":
					op = "<"
				case ">=":
					op = "<="
				}
			}
			if crOK && litOK {
				tbl, err := a.resolveTable(cr.Table, cr.Column)
				if err == nil {
					a.preds = append(a.preds, Predicate{Table: tbl, Column: cr.Column, Op: op, Value: lit.V})
				}
			}
		}
	case *Between:
		cr, ok := x.E.(*ColRef)
		lo, loOK := x.Lo.(*Lit)
		hi, hiOK := x.Hi.(*Lit)
		if ok && loOK && hiOK && !x.Negate {
			tbl, err := a.resolveTable(cr.Table, cr.Column)
			if err == nil {
				a.preds = append(a.preds, Predicate{Table: tbl, Column: cr.Column, Op: "BETWEEN", Value: lo.V, Hi: hi.V})
			}
		}
	}
}
