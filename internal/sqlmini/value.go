// Package sqlmini is a small embedded relational database engine: a SQL
// subset (CREATE TABLE, SELECT with joins/aggregation/ordering, INSERT,
// UPDATE, DELETE), an in-memory row store with primary-key hash indexes,
// and a tree-walking executor.
//
// It is the backend DBMS substrate of the paper reproduction: the
// paper's prototype drives PostgreSQL/MySQL instances, which are not
// available here, so every cluster backend embeds a sqlmini engine
// instead. The engine additionally exposes static query analysis
// (referenced tables, columns, and predicates) used by the query
// classification of internal/classify.
package sqlmini

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the value kinds of the engine's type system.
type Kind uint8

const (
	// KindNull is the SQL NULL.
	KindNull Kind = iota
	// KindInt is a 64-bit signed integer (also used for dates, as day
	// numbers).
	KindInt
	// KindFloat is a 64-bit float.
	KindFloat
	// KindText is a string.
	KindText
)

// String returns the kind name as used in CREATE TABLE.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindText:
		return "TEXT"
	case KindNull:
		return "NULL"
	}
	return "?"
}

// Value is a single SQL value.
type Value struct {
	K Kind
	I int64
	F float64
	S string
}

// Null is the SQL NULL value.
var Null = Value{K: KindNull}

// Int returns an integer value.
func Int(v int64) Value { return Value{K: KindInt, I: v} }

// Float returns a float value.
func Float(v float64) Value { return Value{K: KindFloat, F: v} }

// Text returns a text value.
func Text(v string) Value { return Value{K: KindText, S: v} }

// Bool encodes a boolean as the integers 0/1 (the engine has no
// dedicated boolean type, like SQLite).
func Bool(b bool) Value {
	if b {
		return Int(1)
	}
	return Int(0)
}

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// Truth reports whether the value is true under SQL semantics (non-zero
// number; NULL and text are false).
func (v Value) Truth() bool {
	switch v.K {
	case KindInt:
		return v.I != 0
	case KindFloat:
		return v.F != 0
	default:
		return false
	}
}

// AsFloat coerces numeric values to float64.
func (v Value) AsFloat() (float64, bool) {
	switch v.K {
	case KindInt:
		return float64(v.I), true
	case KindFloat:
		return v.F, true
	default:
		return 0, false
	}
}

// Compare orders two values: NULL < numbers < text; numbers compare
// numerically with int/float coercion; text compares lexically.
// The result is -1, 0, or 1.
func Compare(a, b Value) int {
	rank := func(v Value) int {
		switch v.K {
		case KindNull:
			return 0
		case KindInt, KindFloat:
			return 1
		default:
			return 2
		}
	}
	ra, rb := rank(a), rank(b)
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch ra {
	case 0:
		return 0
	case 1:
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		}
		return 0
	default:
		return strings.Compare(a.S, b.S)
	}
}

// String renders the value for debugging and result printing.
func (v Value) String() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	default:
		return v.S
	}
}

// key renders a canonical form for grouping and index keys.
func (v Value) key() string {
	switch v.K {
	case KindNull:
		return "\x00"
	case KindInt:
		return "i" + strconv.FormatInt(v.I, 10)
	case KindFloat:
		if v.F == float64(int64(v.F)) {
			return "i" + strconv.FormatInt(int64(v.F), 10)
		}
		return "f" + strconv.FormatFloat(v.F, 'b', -1, 64)
	default:
		return "s" + v.S
	}
}

// Row is a tuple of values.
type Row []Value

// Column describes one table column.
type Column struct {
	Name       string
	Type       Kind
	PrimaryKey bool
}

// coerce converts a value to the column type on insert/update, allowing
// int→float widening and numeric→text never (strictness catches workload
// generator bugs early).
func coerce(v Value, t Kind) (Value, error) {
	if v.K == KindNull || v.K == t {
		return v, nil
	}
	if v.K == KindInt && t == KindFloat {
		return Float(float64(v.I)), nil
	}
	if v.K == KindFloat && t == KindInt {
		return Int(int64(v.F)), nil
	}
	return Null, fmt.Errorf("sqlmini: cannot store %s value into %s column", v.K, t)
}
