package sqlmini

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// buildJoinDB creates a three-table join schema with deterministic
// data: two "big" tables of n rows linked by an equi edge, and a small
// dimension table with a selective tag column.
func buildJoinDB(tb testing.TB, n int) *Engine {
	tb.Helper()
	e := New()
	for _, ddl := range []string{
		`CREATE TABLE jbig1 (id INT PRIMARY KEY, dim_id INT, v INT)`,
		`CREATE TABLE jbig2 (id INT PRIMARY KEY, b1_id INT, v INT)`,
		`CREATE TABLE jdim (id INT PRIMARY KEY, tag TEXT)`,
	} {
		if _, err := e.Exec(ddl); err != nil {
			tb.Fatalf("Exec(%q): %v", ddl, err)
		}
	}
	rows1 := make([]Row, 0, n)
	rows2 := make([]Row, 0, n)
	for i := 0; i < n; i++ {
		rows1 = append(rows1, Row{Int(int64(i)), Int(int64(i % 16)), Int(int64(i * 7))})
		rows2 = append(rows2, Row{Int(int64(i)), Int(int64(i)), Int(int64(i * 3))})
	}
	dim := make([]Row, 0, 16)
	for i := 0; i < 16; i++ {
		dim = append(dim, Row{Int(int64(i)), Text(fmt.Sprintf("t%d", i%4))})
	}
	for table, rows := range map[string][]Row{"jbig1": rows1, "jbig2": rows2, "jdim": dim} {
		if err := e.BulkInsert(table, rows); err != nil {
			tb.Fatalf("BulkInsert(%s): %v", table, err)
		}
	}
	return e
}

// pessimalJoin is a 3-table join written in the worst textual order:
// the two big tables first, the selective dimension last.
const pessimalJoin = `SELECT b1.v FROM jbig1 b1 JOIN jbig2 b2 ON b2.b1_id = b1.id JOIN jdim d ON d.id = b1.dim_id WHERE d.tag = 't0'`

// planOrder plans sql against the engine's current view and returns
// the chosen physical scan order.
func planOrder(e *Engine, sql string) ([]string, error) {
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("not a SELECT: %T", st)
	}
	p, _, err := e.planFor(sel, e.loadView())
	if err != nil {
		return nil, err
	}
	order := make([]string, len(p.scans))
	for i := range p.scans {
		order[i] = p.scans[i].table
	}
	return order, nil
}

// TestJoinOrderCostBased: the dimension table with the selective filter
// must be joined first even though the SQL text names it last.
func TestJoinOrderCostBased(t *testing.T) {
	e := buildJoinDB(t, 1000)
	order, err := planOrder(e, pessimalJoin)
	if err != nil {
		t.Fatal(err)
	}
	if order[0] != "jdim" {
		t.Fatalf("scan order = %v, want jdim first", order)
	}
	// And the plan is marked reordered for the metrics.
	ps := e.PlannerStats()
	if ps.JoinPlans < 1 || ps.Reordered < 1 {
		t.Fatalf("planner stats = %+v, want join plan counted as reordered", ps)
	}
	// The reordered plan still returns the right rows: jdim tag 't0' is
	// ids {0,4,8,12}, each with 1000/16 jbig1 rows and one jbig2 match.
	r := mustExec(t, e, pessimalJoin)
	if want := 4 * 1000 / 16; len(r.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(r.Rows), want)
	}
}

// TestPlannerDeterminism: same statement + same stats must produce a
// bit-identical join order across runs, engines, and concurrent
// planners (exercised under -race by the suite).
func TestPlannerDeterminism(t *testing.T) {
	ref := buildJoinDB(t, 500)
	want, err := planOrder(ref, pessimalJoin)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		e := buildJoinDB(t, 500)
		const workers = 8
		got := make([][]string, workers)
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				got[w], errs[w] = planOrder(e, pessimalJoin)
			}(w)
		}
		wg.Wait()
		for w := 0; w < workers; w++ {
			if errs[w] != nil {
				t.Fatal(errs[w])
			}
			if fmt.Sprint(got[w]) != fmt.Sprint(want) {
				t.Fatalf("run %d worker %d: order %v, want %v", run, w, got[w], want)
			}
		}
	}
}

// TestPlanCacheHitWithParams: repeated statements of the same shape hit
// the cache and still see their own literals.
func TestPlanCacheHitWithParams(t *testing.T) {
	e := newTestDB(t)
	before := e.PlannerStats()
	r := mustExec(t, e, `SELECT name FROM item WHERE id = 1`)
	if len(r.Rows) != 1 || r.Rows[0][0].S != "apple" {
		t.Fatalf("rows = %v", r.Rows)
	}
	r = mustExec(t, e, `SELECT name FROM item WHERE id = 3`)
	if len(r.Rows) != 1 || r.Rows[0][0].S != "cherry" {
		t.Fatalf("cached plan with new literal: rows = %v", r.Rows)
	}
	// Same shape again with a different IN list of equal length.
	r = mustExec(t, e, `SELECT id FROM item WHERE id IN (1, 2)`)
	if len(r.Rows) != 2 {
		t.Fatalf("IN rows = %v", r.Rows)
	}
	r = mustExec(t, e, `SELECT id FROM item WHERE id IN (3, 4)`)
	if len(r.Rows) != 2 {
		t.Fatalf("cached IN with new literals: rows = %v", r.Rows)
	}
	after := e.PlannerStats()
	if hits := after.Hits - before.Hits; hits < 2 {
		t.Fatalf("cache hits = %d, want >= 2 (stats %+v)", hits, after)
	}
	// Aggregation through a cached plan sees its own parameters too.
	r1 := mustExec(t, e, `SELECT cust, SUM(qty) AS s FROM orders WHERE qty > 1 GROUP BY cust ORDER BY cust`)
	r2 := mustExec(t, e, `SELECT cust, SUM(qty) AS s FROM orders WHERE qty > 2 GROUP BY cust ORDER BY cust`)
	if len(r1.Rows) == len(r2.Rows) {
		t.Fatalf("different params, same output size: %v vs %v", r1.Rows, r2.Rows)
	}
}

// TestPlanInvalidation: DDL, CREATE INDEX, and snapshot restores bump
// the generation so stale plans cannot be served.
func TestPlanInvalidation(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, `SELECT name FROM item WHERE id = 1`)
	base := e.PlannerStats()
	if base.Entries < 1 {
		t.Fatalf("no cached plan: %+v", base)
	}

	mustExec(t, e, `CREATE TABLE extra (a INT PRIMARY KEY)`)
	ps := e.PlannerStats()
	if ps.Invalidations <= base.Invalidations || ps.Entries != 0 {
		t.Fatalf("CREATE TABLE did not invalidate: %+v -> %+v", base, ps)
	}

	mustExec(t, e, `SELECT name FROM item WHERE id = 1`)
	base = e.PlannerStats()
	if err := e.CreateIndex("item", "stock"); err != nil {
		t.Fatal(err)
	}
	ps = e.PlannerStats()
	if ps.Invalidations <= base.Invalidations || ps.Entries != 0 {
		t.Fatalf("CREATE INDEX did not invalidate: %+v -> %+v", base, ps)
	}
	// The re-built plan uses the new index access path.
	r := mustExec(t, e, `SELECT name FROM item WHERE stock = 100`)
	if r.Scanned != 1 {
		t.Fatalf("Scanned = %d, want 1 via new index", r.Scanned)
	}

	// Restore (the migration-cutover path) invalidates too.
	var buf bytes.Buffer
	if err := e.SnapshotTables(&buf, []string{"extra"}); err != nil {
		t.Fatal(err)
	}
	e2 := New()
	if _, err := e2.Exec(`CREATE TABLE t (a INT PRIMARY KEY)`); err != nil {
		t.Fatal(err)
	}
	mustExec(t, e2, `SELECT a FROM t`)
	base2 := e2.PlannerStats()
	if err := e2.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	ps2 := e2.PlannerStats()
	if ps2.Invalidations <= base2.Invalidations || ps2.Entries != 0 {
		t.Fatalf("Restore did not invalidate: %+v -> %+v", base2, ps2)
	}
}

// TestPlanDriftRebuild: a cached join plan is rebuilt when a table's
// cardinality moves far enough to invalidate the chosen order.
func TestPlanDriftRebuild(t *testing.T) {
	e := buildJoinDB(t, 100)
	const q = `SELECT b1.v FROM jbig1 b1 JOIN jbig2 b2 ON b2.b1_id = b1.id`
	mustExec(t, e, q)
	base := e.PlannerStats()

	// Repeat: cache hit, no rebuild.
	mustExec(t, e, q)
	ps := e.PlannerStats()
	if ps.Hits != base.Hits+1 {
		t.Fatalf("expected a hit: %+v -> %+v", base, ps)
	}

	// Grow jbig2 past the 4x drift bound; the cached order is stale.
	grow := make([]Row, 0, 500)
	for i := 0; i < 500; i++ {
		grow = append(grow, Row{Int(int64(1000 + i)), Int(int64(i % 100)), Int(0)})
	}
	if err := e.BulkInsert("jbig2", grow); err != nil {
		t.Fatal(err)
	}
	mustExec(t, e, q)
	ps2 := e.PlannerStats()
	if ps2.Invalidations <= ps.Invalidations {
		t.Fatalf("drift did not rebuild: %+v -> %+v", ps, ps2)
	}
}

// TestPinnedViewCachedPlan: a pinned view keeps returning its epoch's
// rows after the current schema and data move on, without poisoning the
// cache for current-view queries.
func TestPinnedViewCachedPlan(t *testing.T) {
	e := newTestDB(t)
	const q = `SELECT name FROM item WHERE id = 2`
	mustExec(t, e, q) // warm the cache at this epoch
	v := e.AcquireView()

	mustExec(t, e, `UPDATE item SET name = 'BANANA' WHERE id = 2`)
	r, err := e.QueryView(v, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 || r.Rows[0][0].S != "banana" {
		t.Fatalf("pinned view rows = %v, want old name", r.Rows)
	}
	if cur := mustExec(t, e, q); cur.Rows[0][0].S != "BANANA" {
		t.Fatalf("current rows = %v", cur.Rows)
	}

	// Schema replacement: the pinned view must fall back to a transient
	// plan (its *Table differs from the current one).
	mustExec(t, e, `DROP TABLE item`)
	mustExec(t, e, `CREATE TABLE item (id INT PRIMARY KEY, other TEXT)`)
	mustExec(t, e, `INSERT INTO item VALUES (2, 'new-schema')`)
	if _, err := e.Exec(q); err == nil {
		t.Fatal("query for dropped column should fail on the new schema")
	}
	r, err = e.QueryView(v, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 || r.Rows[0][0].S != "banana" {
		t.Fatalf("pinned view after schema change: rows = %v", r.Rows)
	}

	// The pinned-view miss must not evict current-view entries.
	const q2 = `SELECT other FROM item WHERE id = 2`
	mustExec(t, e, q2)
	before := e.PlannerStats()
	if _, err := e.QueryView(v, q2); err == nil {
		t.Fatal("old view has no column 'other'")
	}
	after := e.PlannerStats()
	if after.Entries != before.Entries {
		t.Fatalf("pinned-view query evicted cache entries: %+v -> %+v", before, after)
	}
	if hit := mustExec(t, e, q2); hit.Rows[0][0].S != "new-schema" {
		t.Fatalf("current rows = %v", hit.Rows)
	}
}

// TestPredicatePushdownScanned: a selective single-table predicate in a
// join picks the pk access path for that table instead of filtering the
// join product.
func TestPredicatePushdownScanned(t *testing.T) {
	e := newTestDB(t)
	r := mustExec(t, e, `SELECT o.oid FROM orders o JOIN item i ON o.item_id = i.id WHERE i.id = 3`)
	if len(r.Rows) != 1 {
		t.Fatalf("rows = %v", r.Rows)
	}
	// item probes its pk (1), orders full-scans (4); the hash join adds
	// no per-pair counts. Pre-planner this was 8 (both tables in full).
	if r.Scanned != 5 {
		t.Fatalf("Scanned = %d, want 5 (pk probe + one full scan)", r.Scanned)
	}
}

// TestHashJoinBuildSide: the hash join builds on the smaller input on
// either side; results are identical whichever side that is.
func TestHashJoinBuildSide(t *testing.T) {
	e := New()
	mustExec(t, e, `CREATE TABLE small (id INT PRIMARY KEY, k INT)`)
	mustExec(t, e, `CREATE TABLE big (id INT PRIMARY KEY, k INT)`)
	small := make([]Row, 0, 3)
	for i := 0; i < 3; i++ {
		small = append(small, Row{Int(int64(i)), Int(int64(i))}) // k: 0,1,2
	}
	big := make([]Row, 0, 300)
	for i := 0; i < 300; i++ {
		big = append(big, Row{Int(int64(i)), Int(int64(i % 10))}) // 30 rows per k
	}
	if err := e.BulkInsert("small", small); err != nil {
		t.Fatal(err)
	}
	if err := e.BulkInsert("big", big); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{
		`SELECT s.id, b.id FROM small s JOIN big b ON s.k = b.k ORDER BY s.id, b.id`,
		`SELECT s.id, b.id FROM big b JOIN small s ON b.k = s.k ORDER BY s.id, b.id`,
	} {
		r := mustExec(t, e, q)
		if len(r.Rows) != 3*30 {
			t.Fatalf("%s: rows = %d, want 90", q, len(r.Rows))
		}
	}
}

// TestHashJoinCancellation: the equi-join build/probe path observes
// context cancellation (pre-planner only the nested loop did).
func TestHashJoinCancellation(t *testing.T) {
	e := newTestDB(t)
	st, err := Parse(`SELECT o.oid FROM orders o JOIN item i ON o.item_id = i.id`)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// execSelect directly: ExecStmtContext rejects a canceled context up
	// front, but the join loops must also notice cancellation mid-run.
	if _, err := e.execSelect(ctx, st.(*SelectStmt), e.loadView()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled from the hash-join loop", err)
	}
}

// TestPlanCacheLFUEviction: distinct statement shapes past the cap
// evict the least-used eighth instead of growing without bound.
func TestPlanCacheLFUEviction(t *testing.T) {
	e := newTestDB(t)
	for i := 0; i < planCacheCap+100; i++ {
		// LIMIT is part of the shape, so each i is a distinct plan-cache
		// key of the same statement family.
		mustExec(t, e, fmt.Sprintf(`SELECT id FROM item LIMIT %d`, i+1))
	}
	ps := e.PlannerStats()
	if ps.Entries > planCacheCap {
		t.Fatalf("cache grew past cap: %+v", ps)
	}
	if ps.Evictions == 0 {
		t.Fatalf("no evictions recorded: %+v", ps)
	}
}

// TestNDVEstimate covers the deterministic prefix-sample estimator:
// key-like columns extrapolate, category-like columns saturate.
func TestNDVEstimate(t *testing.T) {
	n := statsSampleRows * 4
	rows := make([]Row, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, Row{Int(int64(i)), Int(int64(i % 7))})
	}
	if got := estimateNDV(rows, 0); got != float64(n) {
		t.Fatalf("key-like ndv = %v, want %d", got, n)
	}
	if got := estimateNDV(rows, 1); got != 7 {
		t.Fatalf("category ndv = %v, want 7", got)
	}
	if got := estimateNDV(nil, 0); got != 1 {
		t.Fatalf("empty ndv = %v, want 1", got)
	}
}

// TestCanonKeyShapes: normalization distinguishes genuinely different
// statements and unifies literal-only variation.
func TestCanonKeyShapes(t *testing.T) {
	key := func(sql string) string {
		t.Helper()
		st, err := Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		k, _, _ := canonSelect(st.(*SelectStmt), false)
		return k
	}
	if key(`SELECT id FROM item WHERE id = 1`) != key(`SELECT id FROM item WHERE id = 99`) {
		t.Fatal("literal variation must share one key")
	}
	distinct := []string{
		`SELECT id FROM item WHERE id = 1`,
		`SELECT id FROM item WHERE stock = 1`,
		`SELECT id FROM item WHERE id = 1 LIMIT 1`,
		`SELECT id FROM item WHERE id IN (1, 2)`,
		`SELECT id FROM item WHERE id IN (1, 2, 3)`,
		`SELECT DISTINCT id FROM item WHERE id = 1`,
		`SELECT id AS x FROM item WHERE id = 1`,
		`SELECT i.id FROM item i WHERE i.id = 1`,
		`SELECT id FROM item WHERE id = 1 ORDER BY id`,
		`SELECT id FROM item WHERE id = 1 ORDER BY id DESC`,
	}
	seen := make(map[string]string, len(distinct))
	for _, sql := range distinct {
		k := key(sql)
		if prev, dup := seen[k]; dup {
			t.Fatalf("key collision between %q and %q: %q", prev, sql, k)
		}
		seen[k] = sql
	}
}
