package sqlmini

import (
	"context"
	"fmt"
	"time"
)

// This file implements copy-on-write snapshot reads. The engine keeps,
// next to its mutable tables, an immutable "read view": an
// epoch-versioned map of per-table snapshots published atomically after
// every committed mutation (or once per group-committed round, see
// ApplyRound). SELECT executes lock-free against the latest published
// view; writers clone shared state on first touch per epoch, so a
// published snapshot is never mutated after it becomes visible.
//
// Sharing discipline (the whole correctness argument lives here):
//
//   - tableView.rows is a slice header cut from the writer's row slab.
//     Pure INSERTs may keep appending to the shared backing array —
//     readers never index past their own header's length — but any
//     operation that rewrites existing headers (UPDATE, DELETE) must
//     first clone the header slice (Table.prepareMutate).
//   - Row contents are shared across epochs, so UPDATE copies the
//     touched row before assigning into it (never writes through a
//     possibly-published Row).
//   - tableView.pk is shared until the writer needs to change it; any
//     pk mutation (including INSERT) clones the map first
//     (Table.prepareInsert / prepareMutate).
//   - Schema (Cols, colIdx, pkCol) is immutable after CREATE TABLE, so
//     views reference the live *Table for binding.
//
// Secondary indexes are rebuilt per view (lazily, on first indexed
// lookup) from the view's own immutable rows; the definitions live on
// the Table, the buckets on the view.

// readView is one immutable published snapshot of the whole engine.
//
//qcpa:published immutable after e.view.Store; readers access it lock-free
type readView struct {
	epoch  int64
	tables map[string]*tableView
}

// tableView is the immutable per-table half of a readView.
//
//qcpa:published immutable once reachable from a published readView
type tableView struct {
	t       *Table // schema only — never touch t.rows/t.pk through this
	rows    []Row
	pk      map[string]int
	indexes []*secondaryIndex
	stats   tableStats // lazily filled planner statistics (tablestats.go)
}

// emptyView backs reads against an engine that has never published
// (zero-value engines constructed without New).
var emptyView = &readView{tables: map[string]*tableView{}}

// loadView returns the latest published view.
func (e *Engine) loadView() *readView {
	if v := e.view.Load(); v != nil {
		return v
	}
	return emptyView
}

// newTableView snapshots a table's current state. Caller holds e.mu.
func newTableView(t *Table) *tableView {
	tv := &tableView{t: t, rows: t.rows, pk: t.pk}
	for _, def := range t.indexes {
		tv.indexes = append(tv.indexes, &secondaryIndex{col: def.col, dirty: true})
	}
	return tv
}

// publishLocked installs a new read view covering every mutation since
// the last publish, bumping the epoch. No-op when nothing changed.
// Caller holds e.mu (write).
func (e *Engine) publishLocked() {
	if !e.dirty {
		return
	}
	e.dirty = false
	e.epochSeq++
	nv := &readView{epoch: e.epochSeq, tables: make(map[string]*tableView, len(e.tables))}
	for name, t := range e.tables {
		tv := t.view
		if tv == nil {
			tv = newTableView(t)
			t.view = tv
			t.rowsShared = true
			t.pkShared = true
		}
		nv.tables[name] = tv
	}
	e.view.Store(nv)
}

// prepareInsert readies a table for row appends in the current epoch:
// the pk map gets cloned if a published view still shares it. Appends
// themselves are safe against shared row slabs (readers are bounded by
// their own header length).
func (t *Table) prepareInsert() {
	if t.pkShared && t.pk != nil {
		np := make(map[string]int, len(t.pk))
		for k, v := range t.pk {
			np[k] = v
		}
		t.pk = np
		t.pkShared = false
	}
	t.view = nil
}

// prepareMutate readies a table for header rewrites (UPDATE/DELETE):
// clones the row-header slice and the pk map if a published view still
// shares them. Idempotent and cheap after the first touch per epoch.
func (t *Table) prepareMutate() {
	if t.rowsShared {
		t.rows = append([]Row(nil), t.rows...)
		t.rowsShared = false
	}
	t.prepareInsert()
}

// Epoch returns the engine's current published epoch. It starts at 0
// for an empty engine and advances by one per published view (one per
// statement outside rounds, one per round inside ApplyRound).
func (e *Engine) Epoch() int64 {
	return e.loadView().epoch
}

// View is a pinned, immutable snapshot of the engine at one epoch.
// Queries against it see exactly the state at acquisition time, no
// matter how many rounds commit — or which tables migrate away —
// afterwards.
type View struct {
	v *readView
}

// AcquireView pins the latest published snapshot.
func (e *Engine) AcquireView() View {
	return View{v: e.loadView()}
}

// Epoch returns the pinned epoch.
func (v View) Epoch() int64 {
	if v.v == nil {
		return 0
	}
	return v.v.epoch
}

// QueryView runs one SELECT against a pinned view.
func (e *Engine) QueryView(v View, sql string) (*Result, error) {
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sqlmini: QueryView requires SELECT, got %T", st)
	}
	rv := v.v
	if rv == nil {
		rv = emptyView
	}
	return e.execSelect(context.Background(), sel, rv)
}

// RoundResult is the per-statement outcome of ApplyRound.
type RoundResult struct {
	Affected int
	Scanned  int64
	Duration time.Duration
	Err      error
}

// ApplyRound applies an ordered batch of update statements under one
// write-lock hold and publishes exactly ONE new read epoch afterwards,
// so concurrent readers observe either none or all of the round — never
// a prefix. This is the engine half of the cluster's group commit: the
// round's order is fixed by the dispatcher, and a failed statement does
// not stop the rest (replicas must stay in lockstep; divergence is
// handled above by checksums and quarantine).
func (e *Engine) ApplyRound(stmts []Statement) []RoundResult {
	out := make([]RoundResult, len(stmts))
	e.mu.Lock()
	defer e.mu.Unlock()
	defer e.publishLocked()
	for i, st := range stmts {
		start := time.Now()
		if err := e.checkFault(); err != nil {
			out[i].Err = err
			out[i].Duration = time.Since(start)
			continue
		}
		res, err := e.execWriteLocked(st)
		out[i].Duration = time.Since(start)
		if err != nil {
			out[i].Err = err
			continue
		}
		out[i].Affected = res.Affected
		out[i].Scanned = res.Scanned
	}
	return out
}

// execWriteLocked dispatches one non-SELECT statement. Caller holds
// e.mu (write) and is responsible for publishing afterwards.
func (e *Engine) execWriteLocked(st Statement) (*Result, error) {
	e.dirty = true
	switch s := st.(type) {
	case *InsertStmt:
		return e.execInsert(s)
	case *UpdateStmt:
		return e.execUpdate(s)
	case *DeleteStmt:
		return e.execDelete(s)
	case *CreateTableStmt:
		if _, dup := e.tables[s.Table]; dup {
			return nil, fmt.Errorf("sqlmini: table %q already exists", s.Table)
		}
		t, err := newTable(s.Table, s.Columns)
		if err != nil {
			return nil, err
		}
		e.tables[s.Table] = t
		e.InvalidatePlans()
		return &Result{}, nil
	case *DropTableStmt:
		if _, ok := e.tables[s.Table]; !ok {
			return nil, unknownTableError(s.Table)
		}
		delete(e.tables, s.Table)
		e.InvalidatePlans()
		return &Result{}, nil
	}
	return nil, fmt.Errorf("sqlmini: unsupported statement %T", st)
}
