package sqlmini

//qcpa:deterministic — plan choice feeds replicated execution; the same
// statement and statistics must yield a bit-identical plan on every
// replica, run, and worker count.

// This file is the sqlmini query planner (DESIGN.md §13):
//
//   - Normalized-statement plan cache. A deterministic AST walk renders
//     every SELECT to a canonical shape string with literals replaced by
//     "?" (the same normalization the cluster's query journal applies to
//     SQL text) and extracts the literal values as parameters. The cache
//     maps shape -> fully bound plan, so repeated query classes skip
//     parsing's downstream work entirely: binder resolution, conjunct
//     analysis, join ordering, and output binding all happen once per
//     class. Invalidation: DDL (CREATE/DROP TABLE, CREATE INDEX) and
//     snapshot restores bump a generation counter and drop every entry
//     (live-migration cutover restores through the same paths); row-count
//     drift beyond 4x triggers a per-plan rebuild; a pinned view whose
//     schema no longer matches the plan falls back to an uncached
//     transient plan.
//
//   - Cost-based join ordering. Joins of up to maxDPTables tables get an
//     exact dynamic program over subsets (left-deep, bitmask-indexed
//     slices — no map iteration anywhere near the choice); larger graphs
//     fall back to a greedy nearest-neighbor order. Costs come from the
//     per-view statistics in tablestats.go: scan cardinality after
//     pushdown, equi-join selectivity 1/max(ndv_l, ndv_r), hash join
//     build+probe+output, nested loop |L|x|R|.
//
//   - Predicate pushdown. WHERE and ON are split into conjuncts at plan
//     time; conjuncts referencing a single table run at that table's
//     scan (or pick its access path: pk probe, secondary-index probe),
//     equality conjuncts linking two tables become hash-join keys, and
//     everything else runs at the first join step where all referenced
//     tables are available — nothing filters the full join product
//     anymore.

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// maxDPTables is the largest join graph planned by exact DP; beyond it
// the greedy order kicks in. 6 tables = 63 subsets, far below where DP
// cost would show up next to execution.
const maxDPTables = 6

// planCacheCap bounds the plan cache. When full, the least-frequently
// used eighth is evicted (ties broken in sorted key order), matching the
// cluster journal's eviction policy.
const planCacheCap = 512

// planDriftFactor is the row-count ratio past which a cached plan's
// join order is considered stale and the plan is rebuilt.
const planDriftFactor = 4

// planDriftMinRows exempts small tables from drift checks: join order
// barely matters under this size and tiny tables cross any ratio with a
// handful of inserts.
const planDriftMinRows = 64

// boundParam is a literal extracted by statement normalization: the
// idx-th "?" of the canonical shape. Execution supplies the actual
// values through evalCtx.params, so one cached plan serves every
// literal binding of its query class.
type boundParam struct{ idx int }

func (*boundParam) isExpr() {}

// ---------------------------------------------------------------------
// Statement normalization
// ---------------------------------------------------------------------

// canonizer renders a SELECT to its canonical shape, collecting literal
// values in order. With build set it additionally produces a
// parameterized copy of each expression (literals replaced by
// boundParam) for the plan builder to bind.
type canonizer struct {
	sb     strings.Builder
	params []Value
	build  bool
}

func (c *canonizer) expr(e Expr) Expr {
	switch x := e.(type) {
	case nil:
		c.sb.WriteByte('_')
		return nil
	case *Lit:
		c.sb.WriteByte('?')
		idx := len(c.params)
		c.params = append(c.params, x.V)
		if c.build {
			return &boundParam{idx: idx}
		}
		return x
	case *boundParam:
		c.sb.WriteByte('?')
		c.params = append(c.params, Null)
		return x
	case *ColRef:
		c.sb.WriteString("c<")
		c.sb.WriteString(x.Table)
		c.sb.WriteByte('.')
		c.sb.WriteString(x.Column)
		c.sb.WriteByte('>')
		return x
	case *BinOp:
		c.sb.WriteByte('(')
		c.sb.WriteString(x.Op)
		c.sb.WriteByte(' ')
		l := c.expr(x.L)
		c.sb.WriteByte(' ')
		r := c.expr(x.R)
		c.sb.WriteByte(')')
		if c.build {
			return &BinOp{Op: x.Op, L: l, R: r}
		}
		return x
	case *UnOp:
		c.sb.WriteString("(u")
		c.sb.WriteString(x.Op)
		c.sb.WriteByte(' ')
		inner := c.expr(x.E)
		c.sb.WriteByte(')')
		if c.build {
			return &UnOp{Op: x.Op, E: inner}
		}
		return x
	case *Between:
		c.sb.WriteString("(bt")
		if x.Negate {
			c.sb.WriteByte('!')
		}
		c.sb.WriteByte(' ')
		ee := c.expr(x.E)
		c.sb.WriteByte(' ')
		lo := c.expr(x.Lo)
		c.sb.WriteByte(' ')
		hi := c.expr(x.Hi)
		c.sb.WriteByte(')')
		if c.build {
			return &Between{E: ee, Lo: lo, Hi: hi, Negate: x.Negate}
		}
		return x
	case *InList:
		c.sb.WriteString("(in")
		if x.Negate {
			c.sb.WriteByte('!')
		}
		c.sb.WriteByte(' ')
		ee := c.expr(x.E)
		list := make([]Expr, len(x.List))
		for i, le := range x.List {
			c.sb.WriteByte(' ')
			list[i] = c.expr(le)
		}
		c.sb.WriteByte(')')
		if c.build {
			return &InList{E: ee, List: list, Negate: x.Negate}
		}
		return x
	case *IsNull:
		c.sb.WriteString("(nul")
		if x.Negate {
			c.sb.WriteByte('!')
		}
		c.sb.WriteByte(' ')
		ee := c.expr(x.E)
		c.sb.WriteByte(')')
		if c.build {
			return &IsNull{E: ee, Negate: x.Negate}
		}
		return x
	case *Agg:
		c.sb.WriteString("(agg:")
		c.sb.WriteString(x.Func)
		if x.Distinct {
			c.sb.WriteString(":d")
		}
		c.sb.WriteByte(' ')
		var ee Expr
		if x.E == nil {
			c.sb.WriteByte('*')
		} else {
			ee = c.expr(x.E)
		}
		c.sb.WriteByte(')')
		if c.build {
			return &Agg{Func: x.Func, E: ee, Distinct: x.Distinct}
		}
		return x
	}
	// Unknown node kinds make the statement unplannable through the
	// cache; binding will reject them with a precise error.
	c.sb.WriteString("!?")
	return e
}

// canonSelect renders the canonical shape of st, extracts its literal
// parameters, and (when build is set) returns a parameterized copy.
func canonSelect(st *SelectStmt, build bool) (string, []Value, *SelectStmt) {
	c := &canonizer{build: build}
	var out *SelectStmt
	if build {
		out = &SelectStmt{
			Distinct: st.Distinct,
			Table:    st.Table,
			Alias:    st.Alias,
			Limit:    st.Limit,
		}
	}
	c.sb.WriteByte('S')
	if st.Distinct {
		c.sb.WriteByte('D')
	}
	for _, it := range st.Items {
		c.sb.WriteString("|i:")
		if it.Star {
			c.sb.WriteByte('*')
			if build {
				out.Items = append(out.Items, SelectItem{Star: true})
			}
			continue
		}
		ex := c.expr(it.Expr)
		if it.Alias != "" {
			c.sb.WriteString(":a<")
			c.sb.WriteString(it.Alias)
			c.sb.WriteByte('>')
		}
		if build {
			out.Items = append(out.Items, SelectItem{Expr: ex, Alias: it.Alias})
		}
	}
	c.sb.WriteString("|f:")
	c.sb.WriteString(st.Table)
	c.sb.WriteString(":a<")
	c.sb.WriteString(st.Alias)
	c.sb.WriteByte('>')
	for _, j := range st.Joins {
		c.sb.WriteString("|j:")
		c.sb.WriteString(j.Table)
		c.sb.WriteString(":a<")
		c.sb.WriteString(j.Alias)
		c.sb.WriteString(">:")
		on := c.expr(j.On)
		if build {
			out.Joins = append(out.Joins, JoinClause{Table: j.Table, Alias: j.Alias, On: on})
		}
	}
	if st.Where != nil {
		c.sb.WriteString("|w:")
		w := c.expr(st.Where)
		if build {
			out.Where = w
		}
	}
	for _, g := range st.GroupBy {
		c.sb.WriteString("|g:")
		bg := c.expr(g)
		if build {
			out.GroupBy = append(out.GroupBy, bg)
		}
	}
	if st.Having != nil {
		c.sb.WriteString("|h:")
		h := c.expr(st.Having)
		if build {
			out.Having = h
		}
	}
	for _, ob := range st.OrderBy {
		c.sb.WriteString("|o:")
		oe := c.expr(ob.Expr)
		if ob.Desc {
			c.sb.WriteString(":d")
		}
		if build {
			out.OrderBy = append(out.OrderBy, OrderItem{Expr: oe, Desc: ob.Desc})
		}
	}
	if st.Limit >= 0 {
		c.sb.WriteString("|l:")
		c.sb.WriteString(strconv.Itoa(st.Limit))
	}
	return c.sb.String(), c.params, out
}

// ---------------------------------------------------------------------
// Conjunct analysis
// ---------------------------------------------------------------------

// predKind classifies a single-table conjunct for selectivity
// estimation.
type predKind uint8

const (
	predOther predKind = iota
	predEqConst
	predRange
	predBetween
	predIn
	predLike
	predIsNull
)

// conjunct is one AND-term of WHERE/ON, annotated with the (textual)
// tables it references and the patterns the planner exploits.
type conjunct struct {
	expr Expr   // parameterized, unbound
	mask uint64 // bitmask of textual table indices referenced

	// Equi-join shape: tblL.colL = tblR.colR across two tables.
	isEquiJoin             bool
	eqLTable, eqLCol       int
	eqRTable, eqRCol       int

	// Single-table constant shape and selectivity class.
	kind     predKind
	constCol int  // column (within its table) for predEqConst
	constVal Expr // Lit/boundParam for predEqConst
	inLen    int
}

// splitConjuncts flattens top-level ANDs. Splitting is semantics
// preserving under eval's three-valued logic: a row passes "a AND b"
// exactly when both conjuncts evaluate truthy (NULL counts as false in
// both forms).
func splitConjuncts(e Expr, out *[]Expr) {
	if e == nil {
		return
	}
	if bo, ok := e.(*BinOp); ok && bo.Op == "AND" {
		splitConjuncts(bo.L, out)
		splitConjuncts(bo.R, out)
		return
	}
	*out = append(*out, e)
}

// collectColRefs gathers every column reference of an expression.
func collectColRefs(e Expr, out *[]*ColRef) {
	switch x := e.(type) {
	case *ColRef:
		*out = append(*out, x)
	case *UnOp:
		collectColRefs(x.E, out)
	case *BinOp:
		collectColRefs(x.L, out)
		collectColRefs(x.R, out)
	case *Between:
		collectColRefs(x.E, out)
		collectColRefs(x.Lo, out)
		collectColRefs(x.Hi, out)
	case *InList:
		collectColRefs(x.E, out)
		for _, le := range x.List {
			collectColRefs(le, out)
		}
	case *IsNull:
		collectColRefs(x.E, out)
	case *Agg:
		collectColRefs(x.E, out)
	}
}

// isConstExpr reports whether e evaluates without a row (literal or
// extracted parameter).
func isConstExpr(e Expr) bool {
	switch e.(type) {
	case *Lit, *boundParam:
		return true
	}
	return false
}

// classifyConjunct resolves a conjunct's column references against the
// textual binder and annotates the planner-relevant shapes. slotTable
// maps binder slot index -> textual table index.
func classifyConjunct(e Expr, tb *binder, slotTable []int) (conjunct, error) {
	c := conjunct{expr: e}
	var refs []*ColRef
	collectColRefs(e, &refs)
	for _, r := range refs {
		idx, err := tb.resolve(r)
		if err != nil {
			return c, err
		}
		c.mask |= 1 << uint(slotTable[idx])
	}
	nTables := popcount(c.mask)

	resolveCol := func(r *ColRef) (table, col int) {
		idx, _ := tb.resolve(r) // already resolved above
		return slotTable[idx], tb.slots[idx].col
	}

	switch x := e.(type) {
	case *BinOp:
		switch x.Op {
		case "=":
			lc, lok := x.L.(*ColRef)
			rc, rok := x.R.(*ColRef)
			if lok && rok && nTables == 2 {
				lt, lcol := resolveCol(lc)
				rt, rcol := resolveCol(rc)
				if lt != rt {
					c.isEquiJoin = true
					c.eqLTable, c.eqLCol = lt, lcol
					c.eqRTable, c.eqRCol = rt, rcol
				}
				return c, nil
			}
			if nTables == 1 {
				if lok && isConstExpr(x.R) {
					_, col := resolveCol(lc)
					c.kind, c.constCol, c.constVal = predEqConst, col, x.R
				} else if rok && isConstExpr(x.L) {
					_, col := resolveCol(rc)
					c.kind, c.constCol, c.constVal = predEqConst, col, x.L
				}
			}
		case "<", "<=", ">", ">=":
			if nTables == 1 {
				c.kind = predRange
			}
		case "LIKE":
			if nTables == 1 {
				c.kind = predLike
			}
		}
	case *Between:
		if nTables == 1 {
			c.kind = predBetween
		}
	case *InList:
		if nTables == 1 {
			c.kind = predIn
			c.inLen = len(x.List)
		}
	case *IsNull:
		if nTables == 1 {
			c.kind = predIsNull
		}
	}
	return c, nil
}

func popcount(m uint64) int {
	n := 0
	for m != 0 {
		m &= m - 1
		n++
	}
	return n
}

// conjunctSelectivity estimates the fraction of a table's rows passing
// a single-table conjunct. The constants are coarse on purpose: the
// planner only needs relative magnitudes good enough to order joins.
func conjunctSelectivity(c conjunct, tv *tableView) float64 {
	n := float64(len(tv.rows))
	if n < 1 {
		n = 1
	}
	switch c.kind {
	case predEqConst:
		return 1 / tv.ndvEstimate(c.constCol)
	case predRange:
		return 0.30
	case predBetween:
		return 0.25
	case predIn:
		sel := float64(c.inLen) / n
		if sel > 1 {
			sel = 1
		}
		if sel < 1/n {
			sel = 1 / n
		}
		return sel
	case predLike:
		return 0.25
	case predIsNull:
		return 0.10
	default:
		return 0.33
	}
}

// ---------------------------------------------------------------------
// Join ordering
// ---------------------------------------------------------------------

// equiEdge is one equi-join conjunct viewed as a weighted edge of the
// join graph.
type equiEdge struct {
	a, b int // textual table indices
	sel  float64
}

// joinStepCost models joining an accumulated intermediate of leftCard
// rows with a base table of rightCard rows. Connected pairs hash-join
// (build + probe + output); disconnected pairs nested-loop (every
// pair). Returns (cost, output cardinality).
func joinStepCost(leftCard, rightCard float64, edges []equiEdge, placed uint64, next int) (float64, float64) {
	sel := 1.0
	connected := false
	for _, e := range edges {
		if (e.a == next && placed&(1<<uint(e.b)) != 0) ||
			(e.b == next && placed&(1<<uint(e.a)) != 0) {
			connected = true
			sel *= e.sel
		}
	}
	out := leftCard * rightCard * sel
	if out < 0 {
		out = 0
	}
	if connected {
		return leftCard + rightCard + out, out
	}
	return leftCard*rightCard + out, out
}

// chooseJoinOrder picks the join order for textual tables with the
// given post-pushdown cardinalities. Exact left-deep DP up to
// maxDPTables, greedy beyond. The result is a permutation of 0..n-1 and
// is a pure function of (cards, edges): bitmask-indexed slices and
// ascending iteration keep it bit-identical across runs.
func chooseJoinOrder(cards []float64, edges []equiEdge) []int {
	n := len(cards)
	if n <= 1 {
		return []int{0}
	}
	if n <= maxDPTables {
		return dpJoinOrder(cards, edges)
	}
	return greedyJoinOrder(cards, edges)
}

func dpJoinOrder(cards []float64, edges []equiEdge) []int {
	n := len(cards)
	full := uint64(1)<<uint(n) - 1
	type dpEnt struct {
		cost, card float64
		last       int
		prev       uint64
		ok         bool
	}
	dp := make([]dpEnt, full+1)
	for i := 0; i < n; i++ {
		m := uint64(1) << uint(i)
		dp[m] = dpEnt{cost: cards[i], card: cards[i], last: i, prev: 0, ok: true}
	}
	for mask := uint64(1); mask <= full; mask++ {
		if popcount(mask) < 2 {
			continue
		}
		best := dpEnt{}
		for j := 0; j < n; j++ {
			bit := uint64(1) << uint(j)
			if mask&bit == 0 {
				continue
			}
			prev := mask &^ bit
			pe := dp[prev]
			if !pe.ok {
				continue
			}
			stepCost, out := joinStepCost(pe.card, cards[j], edges, prev, j)
			total := pe.cost + cards[j] + stepCost
			if !best.ok || total < best.cost {
				best = dpEnt{cost: total, card: out, last: j, prev: prev, ok: true}
			}
		}
		dp[mask] = best
	}
	order := make([]int, 0, n)
	for mask := full; mask != 0; {
		e := dp[mask]
		order = append(order, e.last)
		mask = e.prev
	}
	// Reverse: backtracking produced last-to-first.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

func greedyJoinOrder(cards []float64, edges []equiEdge) []int {
	n := len(cards)
	order := make([]int, 0, n)
	start := 0
	for i := 1; i < n; i++ {
		if cards[i] < cards[start] {
			start = i
		}
	}
	order = append(order, start)
	placed := uint64(1) << uint(start)
	curCard := cards[start]
	for len(order) < n {
		best := -1
		var bestTotal, bestCard float64
		for j := 0; j < n; j++ {
			if placed&(1<<uint(j)) != 0 {
				continue
			}
			stepCost, out := joinStepCost(curCard, cards[j], edges, placed, j)
			total := cards[j] + stepCost
			if best < 0 || total < bestTotal {
				best, bestTotal, bestCard = j, total, out
			}
		}
		order = append(order, best)
		placed |= 1 << uint(best)
		curCard = bestCard
	}
	return order
}

// ---------------------------------------------------------------------
// Plan structure
// ---------------------------------------------------------------------

type accessKind uint8

const (
	accessFull accessKind = iota
	accessPkEq
	accessIdxEq
)

// scanNode is one base-table access in physical (join) order.
type scanNode struct {
	table string
	alias string
	t     *Table // schema identity captured at plan time

	access  accessKind
	keyCol  int  // probed column (pk or indexed) for accessPkEq/IdxEq
	keyExpr Expr // const expr supplying the probe value

	filter []Expr // pushed-down conjuncts, bound to this table's row

	planRows int // view row count at plan time, for drift detection
}

// joinNode joins scans[i+1] to the accumulated prefix.
type joinNode struct {
	leftKeys  []int  // key columns as prefix-layout indices
	rightKeys []int  // key columns within the right table's row
	extra     []Expr // residual conjuncts, bound to prefix+right layout
}

// orderSpec is one pre-resolved ORDER BY item.
type orderSpec struct {
	outIdx int  // >= 0: sort by that output column
	expr   Expr // else: bound expression over the input row
	desc   bool
}

// selectPlan is a fully bound, immutable, concurrently executable plan
// for one normalized SELECT class.
type selectPlan struct {
	gen    int64 // plan-cache generation the plan was built under
	tables int

	consts []Expr // conjuncts referencing no columns
	scans  []scanNode
	joins  []joinNode

	outExprs []Expr
	outNames []string
	aggs     []*Agg
	groupBy  []Expr
	having   Expr
	distinct bool
	orderBy  []orderSpec
	limit    int

	reordered bool // join order differs from textual order
}

// schemaMatches reports whether the plan can execute against v: every
// scanned table must exist with the same schema identity (the *Table
// pointer is stable for a table's lifetime; DROP+CREATE and restores
// produce a new one).
func (p *selectPlan) schemaMatches(v *readView) bool {
	for i := range p.scans {
		tv, ok := v.tables[p.scans[i].table]
		if !ok || tv.t != p.scans[i].t {
			return false
		}
	}
	return true
}

// drifted reports whether any scanned table's row count moved more than
// planDriftFactor from plan time, invalidating the join order.
func (p *selectPlan) drifted(v *readView) bool {
	if p.tables < 2 {
		return false // no join order to get wrong
	}
	for i := range p.scans {
		tv, ok := v.tables[p.scans[i].table]
		if !ok {
			return true
		}
		cur, old := len(tv.rows), p.scans[i].planRows
		if cur < planDriftMinRows && old < planDriftMinRows {
			continue
		}
		if cur > old*planDriftFactor || old > cur*planDriftFactor {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------
// Plan cache
// ---------------------------------------------------------------------

type planEntry struct {
	plan *selectPlan
	uses atomic.Int64
}

// planCache maps canonical statement shape -> bound plan, with LFU
// eviction and generation-based invalidation. The hit path takes only
// the read lock plus atomic counter bumps — concurrent snapshot reads
// must not serialize on the planner (the whole point of PR 6's
// lock-free read epochs). mu (write) guards the map itself; the
// counters are atomics surfacing through Engine.PlannerStats.
type planCache struct {
	mu      sync.RWMutex
	entries map[string]*planEntry

	hits          atomic.Int64
	misses        atomic.Int64
	invalidations atomic.Int64
	evictions     atomic.Int64
	joinPlans     atomic.Int64
	reordered     atomic.Int64
}

// lookup returns the cached plan for key if it is valid for generation
// gen and view v. current marks v as the engine's latest view: only
// then do drift-stale entries get dropped (a pinned historical view
// must not evict plans that are fine for the present).
func (c *planCache) lookup(key string, gen int64, v *readView, current bool) *selectPlan {
	c.mu.RLock()
	en := c.entries[key]
	c.mu.RUnlock()
	if en == nil {
		c.misses.Add(1)
		return nil
	}
	p := en.plan
	stale := p.gen != gen
	if !stale && p.schemaMatches(v) && !p.drifted(v) {
		en.uses.Add(1)
		c.hits.Add(1)
		return p
	}
	// Stale: drop the entry — always on a generation mismatch, but on
	// schema/drift mismatch only for the current view.
	if stale || current {
		c.mu.Lock()
		if c.entries[key] == en { // keep a racing replacement
			delete(c.entries, key)
			c.invalidations.Add(1)
		}
		c.mu.Unlock()
	}
	c.misses.Add(1)
	return nil
}

// store caches a freshly built plan, evicting the least-frequently-used
// eighth when full. A plan built under an older generation than the
// current one is dropped by the next lookup's gen check, so no re-check
// is needed here.
func (c *planCache) store(key string, p *selectPlan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.entries == nil {
		c.entries = make(map[string]*planEntry)
	}
	if _, exists := c.entries[key]; !exists && len(c.entries) >= planCacheCap {
		type keyUses struct {
			k string
			u int64
		}
		all := make([]keyUses, 0, len(c.entries))
		for k, en := range c.entries {
			all = append(all, keyUses{k, en.uses.Load()})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].u != all[j].u {
				return all[i].u < all[j].u
			}
			return all[i].k < all[j].k
		})
		drop := planCacheCap / 8
		if drop < 1 {
			drop = 1
		}
		for i := 0; i < drop && i < len(all); i++ {
			delete(c.entries, all[i].k)
			c.evictions.Add(1)
		}
	}
	c.entries[key] = &planEntry{plan: p}
}

// notePlan records planning telemetry for one built plan (cached or
// transient).
func (c *planCache) notePlan(p *selectPlan) {
	if p.tables < 2 {
		return
	}
	c.joinPlans.Add(1)
	if p.reordered {
		c.reordered.Add(1)
	}
}

// clear drops every entry (generation invalidation).
func (c *planCache) clear() {
	c.mu.Lock()
	c.entries = nil
	c.mu.Unlock()
	c.invalidations.Add(1)
}

// PlannerStats is a snapshot of the engine's planner counters.
type PlannerStats struct {
	Hits          int64 // plan-cache hits
	Misses        int64 // plan-cache misses (plan built)
	Invalidations int64 // generation bumps + stale-entry drops
	Evictions     int64 // LFU evictions
	Entries       int64 // current cached plans
	JoinPlans     int64 // plans built covering >= 2 tables
	Reordered     int64 // join plans whose order differs from the SQL text
}

// PlannerStats returns the engine's planner counters.
func (e *Engine) PlannerStats() PlannerStats {
	c := &e.plans
	c.mu.RLock()
	entries := int64(len(c.entries))
	c.mu.RUnlock()
	return PlannerStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Invalidations: c.invalidations.Load(),
		Evictions:     c.evictions.Load(),
		Entries:       entries,
		JoinPlans:     c.joinPlans.Load(),
		Reordered:     c.reordered.Load(),
	}
}

// InvalidatePlans drops every cached plan and bumps the plan
// generation, so in-flight builds against the old schema cannot be
// served afterwards. Runs on DDL, CREATE INDEX, and snapshot restores
// (which is how live-migration cutover lands tables); safe to call at
// any time.
func (e *Engine) InvalidatePlans() {
	e.planGen.Add(1)
	e.plans.clear()
}

// ---------------------------------------------------------------------
// Plan building
// ---------------------------------------------------------------------

// planFor returns a plan for st valid against v, consulting the cache.
// Plans built against the engine's current view are cached; plans built
// against a pinned historical view (or racing a concurrent publish) are
// transient.
func (e *Engine) planFor(st *SelectStmt, v *readView) (*selectPlan, []Value, error) {
	gen := e.planGen.Load()
	key, params, _ := canonSelect(st, false)
	current := v == e.view.Load()
	if p := e.plans.lookup(key, gen, v, current); p != nil {
		return p, params, nil
	}
	p, err := e.buildPlan(st, v, gen)
	if err != nil {
		return nil, nil, err
	}
	e.plans.notePlan(p)
	if current {
		e.plans.store(key, p)
	}
	return p, params, nil
}

// buildPlan compiles one SELECT against a view: normalization, conjunct
// analysis, access-path selection, join ordering, and output binding.
func (e *Engine) buildPlan(st *SelectStmt, v *readView, gen int64) (*selectPlan, error) {
	_, _, pst := canonSelect(st, true)

	// Textual table list.
	type tableRef struct {
		name, alias string
		tv          *tableView
	}
	refs := make([]tableRef, 0, 1+len(pst.Joins))
	addRef := func(name, alias string) error {
		tv, ok := v.tables[name]
		if !ok {
			return unknownTableError(name)
		}
		if alias == "" {
			alias = name
		}
		refs = append(refs, tableRef{name, alias, tv})
		return nil
	}
	if err := addRef(pst.Table, pst.Alias); err != nil {
		return nil, err
	}
	for _, j := range pst.Joins {
		if err := addRef(j.Table, j.Alias); err != nil {
			return nil, err
		}
	}
	n := len(refs)
	if n > 64 {
		return nil, fmt.Errorf("sqlmini: too many joined tables (%d)", n)
	}

	// Textual binder for conjunct classification.
	tb := &binder{}
	var slotTable []int
	for i, r := range refs {
		tb.addTable(r.alias, r.tv.t)
		for range r.tv.t.Cols {
			slotTable = append(slotTable, i)
		}
	}

	// Split and classify conjuncts from WHERE and every ON.
	var conjExprs []Expr
	splitConjuncts(pst.Where, &conjExprs)
	for _, j := range pst.Joins {
		splitConjuncts(j.On, &conjExprs)
	}
	var consts []Expr
	perTable := make([][]conjunct, n)
	var joinConjs []conjunct
	for _, ce := range conjExprs {
		c, err := classifyConjunct(ce, tb, slotTable)
		if err != nil {
			return nil, err
		}
		switch popcount(c.mask) {
		case 0:
			consts = append(consts, c.expr)
		case 1:
			ti := lowestBit(c.mask)
			perTable[ti] = append(perTable[ti], c)
		default:
			joinConjs = append(joinConjs, c)
		}
	}

	// Access path and post-pushdown cardinality per textual table.
	type accessChoice struct {
		kind    accessKind
		keyCol  int
		keyExpr Expr
		rest    []conjunct
	}
	access := make([]accessChoice, n)
	cards := make([]float64, n)
	for i, r := range refs {
		t := r.tv.t
		choice := accessChoice{kind: accessFull}
		consumed := -1
		// Prefer a primary-key probe, then a secondary-index probe.
		for ci, cj := range perTable[i] {
			if cj.kind == predEqConst && t.pkCol >= 0 && cj.constCol == t.pkCol {
				choice = accessChoice{kind: accessPkEq, keyCol: t.pkCol, keyExpr: cj.constVal}
				consumed = ci
				break
			}
		}
		if consumed < 0 {
			for ci, cj := range perTable[i] {
				if cj.kind != predEqConst {
					continue
				}
				indexed := false
				for _, idx := range t.indexes {
					if idx.col == cj.constCol {
						indexed = true
						break
					}
				}
				if indexed {
					choice = accessChoice{kind: accessIdxEq, keyCol: cj.constCol, keyExpr: cj.constVal}
					consumed = ci
					break
				}
			}
		}
		card := float64(len(r.tv.rows))
		if card < 1 {
			card = 1
		}
		for ci, cj := range perTable[i] {
			card *= conjunctSelectivity(cj, r.tv)
			if ci != consumed {
				choice.rest = append(choice.rest, cj)
			}
		}
		if card < 1e-3 {
			card = 1e-3
		}
		access[i] = choice
		cards[i] = card
	}

	// Equi edges for the cost model.
	var edges []equiEdge
	for _, jc := range joinConjs {
		if !jc.isEquiJoin {
			continue
		}
		ndvL := refs[jc.eqLTable].tv.ndvEstimate(jc.eqLCol)
		ndvR := refs[jc.eqRTable].tv.ndvEstimate(jc.eqRCol)
		ndv := ndvL
		if ndvR > ndv {
			ndv = ndvR
		}
		if ndv < 1 {
			ndv = 1
		}
		edges = append(edges, equiEdge{a: jc.eqLTable, b: jc.eqRTable, sel: 1 / ndv})
	}

	order := chooseJoinOrder(cards, edges)

	p := &selectPlan{
		gen:    gen,
		tables: n,
		consts: consts,
		limit:  pst.Limit,
	}
	for pos, ti := range order {
		if ti != pos {
			p.reordered = true
		}
	}

	// Physical layout: binder over tables in chosen order, plus the base
	// offset of each textual table within it.
	pb := &binder{}
	physBase := make([]int, n)
	for _, ti := range order {
		physBase[ti] = len(pb.slots)
		pb.addTable(refs[ti].alias, refs[ti].tv.t)
	}

	// Scans in physical order, with pushed-down filters bound to the
	// single table's own row layout.
	for _, ti := range order {
		r := refs[ti]
		ac := access[ti]
		s := scanNode{
			table:    r.name,
			alias:    r.alias,
			t:        r.tv.t,
			access:   ac.kind,
			keyCol:   ac.keyCol,
			keyExpr:  ac.keyExpr,
			planRows: len(r.tv.rows),
		}
		lb := &binder{}
		lb.addTable(r.alias, r.tv.t)
		for _, cj := range ac.rest {
			be, err := bind(cj.expr, lb)
			if err != nil {
				return nil, err
			}
			s.filter = append(s.filter, be)
		}
		p.scans = append(p.scans, s)
	}

	// Join steps: assign every multi-table conjunct to the first step
	// where all its tables are placed; equi conjuncts linking the new
	// table to the prefix become hash keys, the rest are residuals bound
	// to the prefix+right physical layout.
	assigned := make([]bool, len(joinConjs))
	placed := uint64(1) << uint(order[0])
	for pos := 1; pos < n; pos++ {
		right := order[pos]
		rightBit := uint64(1) << uint(right)
		nowPlaced := placed | rightBit
		jn := joinNode{}
		for ci := range joinConjs {
			if assigned[ci] {
				continue
			}
			jc := &joinConjs[ci]
			if jc.mask&^nowPlaced != 0 {
				continue // references a table not yet placed
			}
			if jc.isEquiJoin && jc.mask&rightBit != 0 {
				var leftTable, leftCol, rightCol int
				if jc.eqRTable == right {
					leftTable, leftCol, rightCol = jc.eqLTable, jc.eqLCol, jc.eqRCol
				} else {
					leftTable, leftCol, rightCol = jc.eqRTable, jc.eqRCol, jc.eqLCol
				}
				jn.leftKeys = append(jn.leftKeys, physBase[leftTable]+leftCol)
				jn.rightKeys = append(jn.rightKeys, rightCol)
				assigned[ci] = true
				continue
			}
			be, err := bind(jc.expr, pb)
			if err != nil {
				return nil, err
			}
			jn.extra = append(jn.extra, be)
			assigned[ci] = true
		}
		p.joins = append(p.joins, jn)
		placed = nowPlaced
	}

	// Output expressions. SELECT * expands in textual table order (the
	// user-visible contract), resolving into the physical layout.
	for _, it := range pst.Items {
		if it.Star {
			for ti := 0; ti < n; ti++ {
				t := refs[ti].tv.t
				for col := range t.Cols {
					p.outExprs = append(p.outExprs, &boundCol{idx: physBase[ti] + col, name: t.Cols[col].Name})
					p.outNames = append(p.outNames, t.Cols[col].Name)
				}
			}
			continue
		}
		be, err := bind(it.Expr, pb)
		if err != nil {
			return nil, err
		}
		p.outExprs = append(p.outExprs, be)
		name := it.Alias
		if name == "" {
			if bc, ok := be.(*boundCol); ok {
				name = bc.name
			} else {
				name = fmt.Sprintf("col%d", len(p.outNames)+1)
			}
		}
		p.outNames = append(p.outNames, name)
	}

	// Aggregates, grouping, HAVING.
	for _, oe := range p.outExprs {
		collectAggs(oe, &p.aggs)
	}
	if pst.Having != nil {
		h, err := bind(pst.Having, pb)
		if err != nil {
			return nil, err
		}
		p.having = h
		collectAggs(p.having, &p.aggs)
	}
	for _, g := range pst.GroupBy {
		bg, err := bind(g, pb)
		if err != nil {
			return nil, err
		}
		p.groupBy = append(p.groupBy, bg)
	}
	p.distinct = pst.Distinct

	// ORDER BY: output column by name, else bound input-row expression.
	for _, ob := range pst.OrderBy {
		spec := orderSpec{outIdx: -1, desc: ob.Desc}
		if cr, ok := ob.Expr.(*ColRef); ok && cr.Table == "" {
			for i, on := range p.outNames {
				if on == cr.Column {
					spec.outIdx = i
					break
				}
			}
		}
		if spec.outIdx < 0 {
			be, err := bind(ob.Expr, pb)
			if err != nil {
				return nil, fmt.Errorf("sqlmini: ORDER BY: %w", err)
			}
			var hasAgg []*Agg
			collectAggs(be, &hasAgg)
			if len(hasAgg) > 0 {
				return nil, fmt.Errorf("sqlmini: ORDER BY aggregate must be a named output column")
			}
			spec.expr = be
		}
		p.orderBy = append(p.orderBy, spec)
	}
	return p, nil
}

func lowestBit(m uint64) int {
	for i := 0; i < 64; i++ {
		if m&(1<<uint(i)) != 0 {
			return i
		}
	}
	return 0
}

// ---------------------------------------------------------------------
// Plan execution
// ---------------------------------------------------------------------

// run executes the plan against one immutable view. The plan itself is
// read-only here: any number of goroutines may run the same plan
// concurrently.
func (p *selectPlan) run(ctx context.Context, v *readView, params []Value, res *Result) error {
	res.Columns = p.outNames
	ec := &evalCtx{params: params}
	for _, cexpr := range p.consts {
		cv, err := eval(cexpr, ec)
		if err != nil {
			return err
		}
		if !cv.Truth() {
			return p.finish(ctx, nil, params, res)
		}
	}
	var rows []Row
	for i := range p.scans {
		s := &p.scans[i]
		tv, ok := v.tables[s.table]
		if !ok {
			return unknownTableError(s.table)
		}
		scanned, err := s.scan(ctx, tv, params, res)
		if err != nil {
			return err
		}
		if i == 0 {
			rows = scanned
			continue
		}
		rows, err = p.joins[i-1].join(ctx, rows, scanned, params, res)
		if err != nil {
			return err
		}
	}
	return p.finish(ctx, rows, params, res)
}

// scan produces the (filtered) base rows of one table from a view. The
// returned slice may alias the view's row slice when no filtering
// applies; callers never mutate result rows.
func (s *scanNode) scan(ctx context.Context, tv *tableView, params []Value, res *Result) ([]Row, error) {
	ec := &evalCtx{params: params}
	switch s.access {
	case accessPkEq:
		res.Scanned++
		kv, err := eval(s.keyExpr, ec)
		if err != nil {
			return nil, err
		}
		if kv.IsNull() {
			return nil, nil // pk = NULL matches nothing
		}
		idx, hit := tv.pk[kv.key()]
		if !hit || idx >= len(tv.rows) {
			return nil, nil
		}
		return s.applyFilter(ctx, []Row{tv.rows[idx]}, params, res)
	case accessIdxEq:
		kv, err := eval(s.keyExpr, ec)
		if err != nil {
			return nil, err
		}
		if kv.IsNull() {
			return nil, nil // col = NULL matches nothing
		}
		if matches, indexed := tv.lookupIndex(s.keyCol, kv); indexed {
			res.Scanned += int64(len(matches))
			out := make([]Row, 0, len(matches))
			for _, ri := range matches {
				out = append(out, tv.rows[ri])
			}
			return s.applyFilter(ctx, out, params, res)
		}
		// The view predates the index (pinned snapshot): scan, applying
		// the consumed equality with the index's key semantics.
		res.Scanned += int64(len(tv.rows))
		kk := kv.key()
		out := make([]Row, 0, 16)
		for i, r := range tv.rows {
			if i%cancelCheckRows == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			if r[s.keyCol].key() == kk {
				out = append(out, r)
			}
		}
		return s.applyFilter(ctx, out, params, res)
	default:
		res.Scanned += int64(len(tv.rows))
		if len(s.filter) == 0 {
			return tv.rows, nil
		}
		return s.applyFilter(ctx, tv.rows, params, res)
	}
}

// applyFilter keeps the rows passing every pushed-down conjunct.
func (s *scanNode) applyFilter(ctx context.Context, rows []Row, params []Value, res *Result) ([]Row, error) {
	if len(s.filter) == 0 {
		return rows, nil
	}
	ec := &evalCtx{params: params}
	out := make([]Row, 0, len(rows))
	for i, r := range rows {
		if i%cancelCheckRows == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		ec.row = r
		keep := true
		for _, f := range s.filter {
			fv, err := eval(f, ec)
			if err != nil {
				return nil, err
			}
			if !fv.Truth() {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, r)
		}
	}
	return out, nil
}

// joinKey renders the composite hash key of a row over the given
// column indices.
func joinKey(r Row, cols []int) string {
	if len(cols) == 1 {
		return r[cols[0]].key()
	}
	var sb strings.Builder
	for _, c := range cols {
		sb.WriteString(r[c].key())
		sb.WriteByte('|')
	}
	return sb.String()
}

// join combines the accumulated prefix rows with one table's rows.
// Equi-joins hash on the smaller side; the output is always ordered
// with the build side's counterpart as the outer sequence, which is a
// deterministic function of the input data. Both build and probe loops
// observe context cancellation.
func (j *joinNode) join(ctx context.Context, left, right []Row, params []Value, res *Result) ([]Row, error) {
	ec := &evalCtx{params: params}
	emit := func(out []Row, lr, rr Row) ([]Row, error) {
		nr := make(Row, 0, len(lr)+len(rr))
		nr = append(nr, lr...)
		nr = append(nr, rr...)
		if len(j.extra) > 0 {
			ec.row = nr
			for _, ex := range j.extra {
				v, err := eval(ex, ec)
				if err != nil {
					return out, err
				}
				if !v.Truth() {
					return out, nil
				}
			}
		}
		return append(out, nr), nil
	}

	if len(j.leftKeys) > 0 {
		out := make([]Row, 0, len(left))
		var err error
		if len(right) <= len(left) {
			// Build on the right, probe with the prefix rows:
			// left-major output order.
			ht := make(map[string][]Row, len(right))
			for i, rr := range right {
				if i%cancelCheckRows == 0 {
					if cerr := ctx.Err(); cerr != nil {
						return nil, cerr
					}
				}
				k := joinKey(rr, j.rightKeys)
				ht[k] = append(ht[k], rr)
			}
			for i, lr := range left {
				if i%cancelCheckRows == 0 {
					if cerr := ctx.Err(); cerr != nil {
						return nil, cerr
					}
				}
				for _, rr := range ht[joinKey(lr, j.leftKeys)] {
					out, err = emit(out, lr, rr)
					if err != nil {
						return nil, err
					}
				}
			}
			return out, nil
		}
		// Build on the (smaller) prefix, probe with the table rows:
		// right-major output order.
		ht := make(map[string][]Row, len(left))
		for i, lr := range left {
			if i%cancelCheckRows == 0 {
				if cerr := ctx.Err(); cerr != nil {
					return nil, cerr
				}
			}
			k := joinKey(lr, j.leftKeys)
			ht[k] = append(ht[k], lr)
		}
		for i, rr := range right {
			if i%cancelCheckRows == 0 {
				if cerr := ctx.Err(); cerr != nil {
					return nil, cerr
				}
			}
			for _, lr := range ht[joinKey(rr, j.rightKeys)] {
				out, err = emit(out, lr, rr)
				if err != nil {
					return nil, err
				}
			}
		}
		return out, nil
	}

	// Nested loop: no equi keys link this table to the prefix. Scanned
	// counts evaluated pairs, as the pre-planner executor did.
	out := make([]Row, 0, len(left))
	var err error
	for _, lr := range left {
		for _, rr := range right {
			if res.Scanned%cancelCheckRows == 0 {
				if cerr := ctx.Err(); cerr != nil {
					return nil, cerr
				}
			}
			res.Scanned++
			out, err = emit(out, lr, rr)
			if err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// finish projects, aggregates, deduplicates, orders and limits the
// joined rows — the pre-bound successor of the old finishSelect.
func (p *selectPlan) finish(ctx context.Context, rows []Row, params []Value, res *Result) error {
	groupMode := len(p.aggs) > 0 || len(p.groupBy) > 0

	var outRows []Row
	var orderInputs []Row // input (or group sample) row per output row
	if groupMode {
		groups, order, err := groupRows(rows, p.groupBy, p.aggs, params)
		if err != nil {
			return err
		}
		for _, key := range order {
			g := groups[key]
			gctx := &evalCtx{row: g.sample, aggs: g.aggValues(), params: params}
			if p.having != nil {
				hv, err := eval(p.having, gctx)
				if err != nil {
					return err
				}
				if !hv.Truth() {
					continue
				}
			}
			or := make(Row, len(p.outExprs))
			for i, oe := range p.outExprs {
				v, err := eval(oe, gctx)
				if err != nil {
					return err
				}
				or[i] = v
			}
			outRows = append(outRows, or)
			orderInputs = append(orderInputs, g.sample)
		}
	} else {
		ec := &evalCtx{params: params}
		for ri, r := range rows {
			if ri%cancelCheckRows == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			ec.row = r
			or := make(Row, len(p.outExprs))
			for i, oe := range p.outExprs {
				v, err := eval(oe, ec)
				if err != nil {
					return err
				}
				or[i] = v
			}
			outRows = append(outRows, or)
			orderInputs = append(orderInputs, r)
		}
	}

	if p.distinct {
		seen := make(map[string]bool, len(outRows))
		kept := outRows[:0]
		keptIn := orderInputs[:0]
		for i, r := range outRows {
			var sb strings.Builder
			for _, v := range r {
				sb.WriteString(v.key())
				sb.WriteByte('|')
			}
			k := sb.String()
			if !seen[k] {
				seen[k] = true
				kept = append(kept, r)
				keptIn = append(keptIn, orderInputs[i])
			}
		}
		outRows = kept
		orderInputs = keptIn
	}

	if len(p.orderBy) > 0 {
		type keyed struct {
			row  Row
			keys []Value
		}
		ks := make([]keyed, len(outRows))
		ec := &evalCtx{params: params}
		for i, r := range outRows {
			ks[i] = keyed{row: r, keys: make([]Value, len(p.orderBy))}
			for oi, spec := range p.orderBy {
				if spec.outIdx >= 0 {
					ks[i].keys[oi] = r[spec.outIdx]
					continue
				}
				ec.row = orderInputs[i]
				v, err := eval(spec.expr, ec)
				if err != nil {
					return err
				}
				ks[i].keys[oi] = v
			}
		}
		sort.SliceStable(ks, func(i, j int) bool {
			for oi, spec := range p.orderBy {
				c := Compare(ks[i].keys[oi], ks[j].keys[oi])
				if c != 0 {
					if spec.desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
		for i := range ks {
			outRows[i] = ks[i].row
		}
	}

	if p.limit >= 0 && len(outRows) > p.limit {
		outRows = outRows[:p.limit]
	}
	res.Rows = outRows
	return nil
}
