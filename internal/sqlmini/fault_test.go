package sqlmini

import (
	"errors"
	"testing"
	"time"
)

func faultSetup(t *testing.T) *Engine {
	t.Helper()
	e := New()
	mustExec := func(sql string) {
		t.Helper()
		if _, err := e.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	mustExec(`CREATE TABLE t (id INT PRIMARY KEY, v INT)`)
	mustExec(`INSERT INTO t VALUES (1, 10)`)
	mustExec(`INSERT INTO t VALUES (2, 20)`)
	return e
}

func TestFaultCrashAndRevive(t *testing.T) {
	e := faultSetup(t)
	f := &Fault{}
	e.SetFault(f)
	if _, err := e.Exec(`SELECT v FROM t WHERE id = 1`); err != nil {
		t.Fatalf("idle injector failed a statement: %v", err)
	}
	f.Crash()
	if !f.Crashed() {
		t.Fatal("Crashed() = false after Crash")
	}
	if _, err := e.Exec(`SELECT v FROM t WHERE id = 1`); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crashed engine returned %v, want ErrCrashed", err)
	}
	if _, err := e.Exec(`UPDATE t SET v = 1 WHERE id = 1`); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crashed engine applied a write: %v", err)
	}
	f.Revive()
	r, err := e.Exec(`SELECT v FROM t WHERE id = 1`)
	if err != nil {
		t.Fatalf("revived engine failed: %v", err)
	}
	if r.Rows[0][0].I != 10 {
		t.Fatal("data changed across crash")
	}
	// Removing the injector restores the plain path.
	e.SetFault(nil)
	if e.FaultInjected() != nil {
		t.Fatal("injector not removed")
	}
}

func TestFaultErrorRate(t *testing.T) {
	e := faultSetup(t)
	e.SetFault(&Fault{ErrorRate: 0.5, Seed: 42})
	var failed, ok int
	for i := 0; i < 400; i++ {
		if _, err := e.Exec(`SELECT v FROM t WHERE id = 2`); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("unexpected error kind: %v", err)
			}
			failed++
		} else {
			ok++
		}
	}
	if failed < 120 || failed > 280 {
		t.Fatalf("error rate 0.5 injected %d/400 failures", failed)
	}
	// Rate 1 fails everything; rate 0 nothing.
	e.SetFault(&Fault{ErrorRate: 1})
	if _, err := e.Exec(`SELECT v FROM t`); !errors.Is(err, ErrInjected) {
		t.Fatalf("rate-1 injector let a statement through: %v", err)
	}
	e.SetFault(&Fault{})
	if _, err := e.Exec(`SELECT v FROM t`); err != nil {
		t.Fatalf("rate-0 injector failed a statement: %v", err)
	}
}

func TestFaultLatency(t *testing.T) {
	e := faultSetup(t)
	e.SetFault(&Fault{Latency: 10 * time.Millisecond})
	start := time.Now()
	if _, err := e.Exec(`SELECT v FROM t WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("latency fault added only %v", d)
	}
}

func TestTableChecksumAgreesAcrossInsertOrder(t *testing.T) {
	a, b := New(), New()
	for _, e := range []*Engine{a, b} {
		if _, err := e.Exec(`CREATE TABLE t (id INT PRIMARY KEY, v TEXT)`); err != nil {
			t.Fatal(err)
		}
	}
	// Same rows, different physical order.
	for _, sql := range []string{`INSERT INTO t VALUES (1, 'x')`, `INSERT INTO t VALUES (2, 'y')`} {
		if _, err := a.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	for _, sql := range []string{`INSERT INTO t VALUES (2, 'y')`, `INSERT INTO t VALUES (1, 'x')`} {
		if _, err := b.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	ca, err := a.TableChecksum("t")
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.TableChecksum("t")
	if err != nil {
		t.Fatal(err)
	}
	if ca != cb {
		t.Fatalf("checksums differ across insert order: %x vs %x", ca, cb)
	}
	// A content change must change the checksum.
	if _, err := b.Exec(`UPDATE t SET v = 'z' WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	cb2, err := b.TableChecksum("t")
	if err != nil {
		t.Fatal(err)
	}
	if cb2 == cb {
		t.Fatal("checksum unchanged after content change")
	}
	// Row count is part of the checksum.
	if _, err := b.Exec(`DELETE FROM t WHERE id = 2`); err != nil {
		t.Fatal(err)
	}
	cb3, err := b.TableChecksum("t")
	if err != nil {
		t.Fatal(err)
	}
	if cb3 == cb2 {
		t.Fatal("checksum unchanged after delete")
	}
}

func TestChecksumsBulk(t *testing.T) {
	e := faultSetup(t)
	sums, err := e.Checksums(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 1 {
		t.Fatalf("sums = %v", sums)
	}
	one, err := e.Checksums([]string{"t"})
	if err != nil {
		t.Fatal(err)
	}
	if one["t"] != sums["t"] {
		t.Fatal("named and all-table checksums disagree")
	}
	if _, err := e.Checksums([]string{"missing"}); err == nil {
		t.Fatal("unknown table accepted")
	}
	if _, err := e.TableChecksum("missing"); err == nil {
		t.Fatal("unknown table accepted")
	}
}
