package sqlmini

import (
	"bytes"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, `UPDATE item SET stock = 42 WHERE id = 1`)

	var buf bytes.Buffer
	if err := e.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored := New()
	if err := restored.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	// Same tables, same rows, indexes rebuilt.
	for _, tbl := range []string{"item", "orders"} {
		orig := e.Table(tbl)
		got := restored.Table(tbl)
		if got == nil || got.NumRows() != orig.NumRows() {
			t.Fatalf("table %q lost rows", tbl)
		}
	}
	r := mustExec(t, restored, `SELECT stock FROM item WHERE id = 1`)
	if r.Rows[0][0].I != 42 {
		t.Fatalf("mutation lost: %v", r.Rows[0][0])
	}
	if r.Scanned != 1 {
		t.Fatal("pk index not rebuilt after restore")
	}
	// The restored engine accepts writes.
	mustExec(t, restored, `INSERT INTO item VALUES (50, 'fig', 1.0, 5)`)
}

func TestSnapshotTablesSubset(t *testing.T) {
	e := newTestDB(t)
	var buf bytes.Buffer
	if err := e.SnapshotTables(&buf, []string{"orders"}); err != nil {
		t.Fatal(err)
	}
	restored := New()
	if err := restored.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Table("orders") == nil || restored.Table("item") != nil {
		t.Fatal("subset snapshot wrong")
	}
	if err := e.SnapshotTables(&buf, []string{"missing"}); err == nil {
		t.Fatal("unknown table accepted")
	}
}

func TestRestoreErrors(t *testing.T) {
	e := newTestDB(t)
	var buf bytes.Buffer
	if err := e.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// Restoring over existing tables fails.
	if err := e.Restore(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("restore over existing tables accepted")
	}
	// Garbage input fails.
	if err := New().Restore(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}
