package sqlmini

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// loadWide fills a table with n rows whose text column defeats every
// index, so a LIKE filter is a full scan.
func loadWide(t *testing.T, e *Engine, n int) {
	t.Helper()
	mustExec(t, e, `CREATE TABLE wide (id INT PRIMARY KEY, tag TEXT, num INT)`)
	rows := make([]Row, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, Row{Int(int64(i)), Text(fmt.Sprintf("tag-%d-x", i)), Int(int64(i % 97))})
	}
	if err := e.BulkInsert("wide", rows); err != nil {
		t.Fatal(err)
	}
}

// TestLongScanDoesNotBlockWriter is the blocked-writer regression test
// for the copy-on-write snapshot reads: before them, a long SELECT held
// the engine-wide reader lock and an INSERT into ANY table waited for
// the scan to drain. Now the scan runs against a published snapshot and
// the writer must commit while the scan is still in flight.
//
// The proof is an ordering, not a latency measurement (robust on slow
// or single-core hosts): the scan runs under a context that is canceled
// only AFTER the insert committed. If the scan observes the
// cancellation, it was still in flight when the write landed — with the
// old engine-wide lock the insert could not have committed before the
// scan finished, so the scan could never see the cancel.
func TestLongScanDoesNotBlockWriter(t *testing.T) {
	// With a single P a CPU-bound scan goroutine can starve the writer
	// for scheduling reasons unrelated to locking; two P's let the OS
	// timeslice the threads.
	if runtime.GOMAXPROCS(0) < 2 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
	}
	e := New()
	const n = 200000
	loadWide(t, e, n)
	// The writes land in their own small table: an insert there is cheap
	// (tiny pk map to copy-on-write), while under the old engine-wide
	// lock it still had to wait for the wide scan.
	mustExec(t, e, `CREATE TABLE small (id INT PRIMARY KEY, v TEXT)`)
	st, err := Parse(`SELECT id FROM wide WHERE tag LIKE 'no-such-prefix%'`)
	if err != nil {
		t.Fatal(err)
	}
	committed := 0
	for attempt := 0; attempt < 5; attempt++ {
		ctx, cancel := context.WithCancel(context.Background())
		started := make(chan struct{})
		scanErr := make(chan error, 1)
		go func() {
			close(started)
			_, err := e.ExecStmtContext(ctx, st)
			scanErr <- err
		}()
		<-started
		// Give the scan goroutine a slice of CPU so it is genuinely
		// mid-scan (a full pass over 200k rows takes far longer than
		// this) before the write lands.
		time.Sleep(5 * time.Millisecond)
		mustExec(t, e, fmt.Sprintf(`INSERT INTO small VALUES (%d, 'fresh')`, attempt))
		committed++
		cancel()
		err := <-scanErr
		r := mustExec(t, e, `SELECT id FROM small`)
		if len(r.Rows) != committed {
			t.Fatalf("committed inserts invisible: got %d rows, want %d", len(r.Rows), committed)
		}
		if errors.Is(err, context.Canceled) {
			return // the insert committed while the scan was in flight
		}
		if err != nil {
			t.Fatalf("scan failed: %v", err)
		}
		// The scan outran the insert this time; try again.
	}
	t.Fatal("in 5 attempts no insert ever committed while a scan was in flight: the writer appears to wait for scans to drain")
}

// TestApplyRoundAtomicVisibility checks the one-epoch-per-round
// contract: concurrent readers must observe a round of inserts either
// entirely or not at all — row counts only ever jump in round-sized
// steps.
func TestApplyRoundAtomicVisibility(t *testing.T) {
	e := New()
	mustExec(t, e, `CREATE TABLE ev (id INT PRIMARY KEY, v INT)`)
	const roundSize = 8
	const rounds = 60

	var stop atomic.Bool
	var bad atomic.Value
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				res, err := e.Exec(`SELECT id FROM ev`)
				if err != nil {
					bad.Store(fmt.Sprintf("reader: %v", err))
					return
				}
				if len(res.Rows)%roundSize != 0 {
					bad.Store(fmt.Sprintf("saw %d rows: a partial round is visible", len(res.Rows)))
					return
				}
			}
		}()
	}
	next := 0
	for r := 0; r < rounds; r++ {
		stmts := make([]Statement, 0, roundSize)
		for i := 0; i < roundSize; i++ {
			st, err := Parse(fmt.Sprintf(`INSERT INTO ev VALUES (%d, %d)`, next, r))
			if err != nil {
				t.Fatal(err)
			}
			stmts = append(stmts, st)
			next++
		}
		for i, res := range e.ApplyRound(stmts) {
			if res.Err != nil {
				t.Fatalf("round %d stmt %d: %v", r, i, res.Err)
			}
		}
	}
	stop.Store(true)
	wg.Wait()
	if msg := bad.Load(); msg != nil {
		t.Fatal(msg)
	}
	if got := e.Epoch(); got != int64(rounds)+1 { // +1 for CREATE TABLE
		t.Fatalf("epoch = %d, want %d (one per round plus the create)", got, rounds+1)
	}
	r := mustExec(t, e, `SELECT id FROM ev`)
	if len(r.Rows) != roundSize*rounds {
		t.Fatalf("got %d rows, want %d", len(r.Rows), roundSize*rounds)
	}
}

// TestPinnedViewIsImmutable checks View semantics: a pinned snapshot
// answers from its own epoch no matter what commits afterwards —
// including UPDATEs that rewrite rows in place and DELETEs that compact
// the row slab.
func TestPinnedViewIsImmutable(t *testing.T) {
	e := newTestDB(t)
	v := e.AcquireView()
	baseEpoch := v.Epoch()

	mustExec(t, e, `UPDATE item SET name = 'APPLE' WHERE id = 1`)
	mustExec(t, e, `DELETE FROM item WHERE id = 2`)
	mustExec(t, e, `INSERT INTO item VALUES (5, 'elderberry', 9.0, 3)`)

	r, err := e.QueryView(v, `SELECT name FROM item`)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		names = append(names, row[0].String())
	}
	got := strings.Join(names, ",")
	if got != "apple,banana,cherry,date" {
		t.Fatalf("pinned view saw %q, want the pre-write rows", got)
	}
	if v.Epoch() != baseEpoch {
		t.Fatalf("pinned epoch moved: %d -> %d", baseEpoch, v.Epoch())
	}
	if e.Epoch() <= baseEpoch {
		t.Fatalf("engine epoch did not advance past %d", baseEpoch)
	}
	// The live engine sees all three writes.
	live := mustExec(t, e, `SELECT name FROM item`)
	if len(live.Rows) != 4 { // 4 - 1 deleted + 1 inserted
		t.Fatalf("live read got %d rows, want 4", len(live.Rows))
	}
}
