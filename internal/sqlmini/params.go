package sqlmini

import "fmt"

// Literal binding for prepared statements. A client prepares a
// statement once from its SQL text (whose literals act as placeholder
// positions) and then executes it repeatedly, shipping only fresh
// values. BindLiterals substitutes the i-th argument for the i-th
// literal of the statement in textual order — the same clause order the
// parser produced them in — on a fresh deep copy, so concurrent
// executions of one prepared statement never share mutable AST nodes.
//
// Binding is value-level only: it cannot change the statement's shape,
// so the plan cache's canonical form (plan.go) — which normalizes
// literals away — keeps hitting the same entry for every execution.

// CountLiterals returns the number of literal positions a statement
// exposes for binding, in the order BindLiterals fills them.
func CountLiterals(st Statement) int {
	n := 0
	walkStmtLits(st, func(*Lit) { n++ })
	return n
}

// BindLiterals returns a deep copy of st with its literals replaced by
// args, in textual order. The binding is all-or-none: len(args) must
// equal CountLiterals(st). With zero args (and zero literals) the
// original statement is returned unchanged — it is never mutated either
// way.
func BindLiterals(st Statement, args []Value) (Statement, error) {
	want := CountLiterals(st)
	if len(args) != want {
		return nil, fmt.Errorf("sqlmini: statement has %d literal positions, got %d args", want, len(args))
	}
	if want == 0 {
		return st, nil
	}
	i := 0
	out := cloneStmt(st, func(l *Lit) *Lit {
		nl := &Lit{V: args[i]}
		i++
		return nl
	})
	return out, nil
}

// CloneLiterals deep-copies st and returns the copy's literal nodes in
// textual order (the same order BindLiterals fills). Writing fresh
// values into those nodes rebinds the clone in place — the basis for
// pooled executions that skip the per-exec deep copy. Only safe when
// nothing retains the statement past the execution call (reads; writes
// are retained by redo logs and migration deltas).
func CloneLiterals(st Statement) (Statement, []*Lit) {
	var lits []*Lit
	out := cloneStmt(st, func(l *Lit) *Lit {
		nl := &Lit{V: l.V}
		lits = append(lits, nl)
		return nl
	})
	return out, lits
}

// walkStmtLits visits every literal of a statement in textual order.
func walkStmtLits(st Statement, f func(*Lit)) {
	switch s := st.(type) {
	case *SelectStmt:
		for _, it := range s.Items {
			walkExprLits(it.Expr, f)
		}
		for _, j := range s.Joins {
			walkExprLits(j.On, f)
		}
		walkExprLits(s.Where, f)
		for _, g := range s.GroupBy {
			walkExprLits(g, f)
		}
		walkExprLits(s.Having, f)
		for _, o := range s.OrderBy {
			walkExprLits(o.Expr, f)
		}
	case *InsertStmt:
		for _, row := range s.Rows {
			for _, e := range row {
				walkExprLits(e, f)
			}
		}
	case *UpdateStmt:
		for _, set := range s.Set {
			walkExprLits(set.Expr, f)
		}
		walkExprLits(s.Where, f)
	case *DeleteStmt:
		walkExprLits(s.Where, f)
	}
}

func walkExprLits(e Expr, f func(*Lit)) {
	switch x := e.(type) {
	case nil:
	case *Lit:
		f(x)
	case *ColRef:
	case *BinOp:
		walkExprLits(x.L, f)
		walkExprLits(x.R, f)
	case *UnOp:
		walkExprLits(x.E, f)
	case *Between:
		walkExprLits(x.E, f)
		walkExprLits(x.Lo, f)
		walkExprLits(x.Hi, f)
	case *InList:
		walkExprLits(x.E, f)
		for _, v := range x.List {
			walkExprLits(v, f)
		}
	case *IsNull:
		walkExprLits(x.E, f)
	case *Agg:
		walkExprLits(x.E, f)
	}
}

// cloneStmt deep-copies a statement, mapping each literal through lit.
// DDL statements have no literals and are returned as-is.
func cloneStmt(st Statement, lit func(*Lit) *Lit) Statement {
	switch s := st.(type) {
	case *SelectStmt:
		ns := *s
		ns.Items = make([]SelectItem, len(s.Items))
		for i, it := range s.Items {
			ns.Items[i] = SelectItem{Expr: cloneExpr(it.Expr, lit), Alias: it.Alias, Star: it.Star}
		}
		ns.Joins = make([]JoinClause, len(s.Joins))
		for i, j := range s.Joins {
			ns.Joins[i] = JoinClause{Table: j.Table, Alias: j.Alias, On: cloneExpr(j.On, lit)}
		}
		ns.Where = cloneExpr(s.Where, lit)
		ns.GroupBy = make([]Expr, len(s.GroupBy))
		for i, g := range s.GroupBy {
			ns.GroupBy[i] = cloneExpr(g, lit)
		}
		ns.Having = cloneExpr(s.Having, lit)
		ns.OrderBy = make([]OrderItem, len(s.OrderBy))
		for i, o := range s.OrderBy {
			ns.OrderBy[i] = OrderItem{Expr: cloneExpr(o.Expr, lit), Desc: o.Desc}
		}
		return &ns
	case *InsertStmt:
		ns := *s
		ns.Rows = make([][]Expr, len(s.Rows))
		for i, row := range s.Rows {
			nr := make([]Expr, len(row))
			for j, e := range row {
				nr[j] = cloneExpr(e, lit)
			}
			ns.Rows[i] = nr
		}
		return &ns
	case *UpdateStmt:
		ns := *s
		ns.Set = make([]struct {
			Column string
			Expr   Expr
		}, len(s.Set))
		for i, set := range s.Set {
			ns.Set[i].Column = set.Column
			ns.Set[i].Expr = cloneExpr(set.Expr, lit)
		}
		ns.Where = cloneExpr(s.Where, lit)
		return &ns
	case *DeleteStmt:
		ns := *s
		ns.Where = cloneExpr(s.Where, lit)
		return &ns
	default:
		return st
	}
}

func cloneExpr(e Expr, lit func(*Lit) *Lit) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *Lit:
		return lit(x)
	case *ColRef:
		nx := *x
		return &nx
	case *BinOp:
		return &BinOp{Op: x.Op, L: cloneExpr(x.L, lit), R: cloneExpr(x.R, lit)}
	case *UnOp:
		return &UnOp{Op: x.Op, E: cloneExpr(x.E, lit)}
	case *Between:
		return &Between{E: cloneExpr(x.E, lit), Lo: cloneExpr(x.Lo, lit), Hi: cloneExpr(x.Hi, lit), Negate: x.Negate}
	case *InList:
		nl := make([]Expr, len(x.List))
		for i, v := range x.List {
			nl[i] = cloneExpr(v, lit)
		}
		return &InList{E: cloneExpr(x.E, lit), List: nl, Negate: x.Negate}
	case *IsNull:
		return &IsNull{E: cloneExpr(x.E, lit), Negate: x.Negate}
	case *Agg:
		return &Agg{Func: x.Func, E: cloneExpr(x.E, lit), Distinct: x.Distinct}
	default:
		return e
	}
}
