package sqlmini

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// mustExec fails the test on error.
func mustExec(t *testing.T, e *Engine, sql string) *Result {
	t.Helper()
	r, err := e.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return r
}

func newTestDB(t *testing.T) *Engine {
	t.Helper()
	e := New()
	mustExec(t, e, `CREATE TABLE item (id INT PRIMARY KEY, name TEXT, price FLOAT, stock INT)`)
	mustExec(t, e, `CREATE TABLE orders (oid INT PRIMARY KEY, item_id INT, qty INT, cust TEXT)`)
	mustExec(t, e, `INSERT INTO item VALUES (1, 'apple', 1.5, 100), (2, 'banana', 0.5, 50), (3, 'cherry', 5.0, 10), (4, 'date', 7.25, 0)`)
	mustExec(t, e, `INSERT INTO orders VALUES (10, 1, 3, 'ann'), (11, 2, 5, 'bob'), (12, 1, 1, 'ann'), (13, 3, 2, 'cat')`)
	return e
}

func TestCreateInsertSelectStar(t *testing.T) {
	e := newTestDB(t)
	r := mustExec(t, e, `SELECT * FROM item`)
	if len(r.Rows) != 4 || len(r.Columns) != 4 {
		t.Fatalf("got %d rows %d cols", len(r.Rows), len(r.Columns))
	}
	if r.Columns[0] != "id" || r.Columns[1] != "name" {
		t.Fatalf("columns = %v", r.Columns)
	}
}

func TestWhereComparisons(t *testing.T) {
	e := newTestDB(t)
	cases := []struct {
		sql  string
		want int
	}{
		{`SELECT id FROM item WHERE price > 1.0`, 3},
		{`SELECT id FROM item WHERE price >= 1.5`, 3},
		{`SELECT id FROM item WHERE price < 1.0`, 1},
		{`SELECT id FROM item WHERE price <= 0.5`, 1},
		{`SELECT id FROM item WHERE name = 'apple'`, 1},
		{`SELECT id FROM item WHERE name <> 'apple'`, 3},
		{`SELECT id FROM item WHERE name != 'apple'`, 3},
		{`SELECT id FROM item WHERE price > 1 AND stock > 0`, 2},
		{`SELECT id FROM item WHERE price > 5 OR stock > 60`, 2},
		{`SELECT id FROM item WHERE NOT price > 1`, 1},
		{`SELECT id FROM item WHERE price BETWEEN 1 AND 6`, 2},
		{`SELECT id FROM item WHERE price NOT BETWEEN 1 AND 6`, 2},
		{`SELECT id FROM item WHERE id IN (1, 3)`, 2},
		{`SELECT id FROM item WHERE id NOT IN (1, 3)`, 2},
		{`SELECT id FROM item WHERE name LIKE 'a%'`, 1},
		{`SELECT id FROM item WHERE name LIKE '%e'`, 2},
		{`SELECT id FROM item WHERE name LIKE '_anana'`, 1},
		{`SELECT id FROM item WHERE name NOT LIKE 'a%'`, 3},
		{`SELECT id FROM item WHERE name IS NULL`, 0},
		{`SELECT id FROM item WHERE name IS NOT NULL`, 4},
	}
	for _, c := range cases {
		r := mustExec(t, e, c.sql)
		if len(r.Rows) != c.want {
			t.Errorf("%s: got %d rows, want %d", c.sql, len(r.Rows), c.want)
		}
	}
}

func TestArithmetic(t *testing.T) {
	e := newTestDB(t)
	r := mustExec(t, e, `SELECT price * stock AS value FROM item WHERE id = 1`)
	if len(r.Rows) != 1 || r.Rows[0][0].F != 150 {
		t.Fatalf("rows = %v", r.Rows)
	}
	if r.Columns[0] != "value" {
		t.Fatalf("alias = %v", r.Columns)
	}
	r = mustExec(t, e, `SELECT 2 + 3 * 4 AS x, (2 + 3) * 4 AS y, 10 / 4 AS z, -id AS n FROM item WHERE id = 1`)
	row := r.Rows[0]
	if row[0].I != 14 || row[1].I != 20 {
		t.Fatalf("precedence wrong: %v", row)
	}
	if row[2].F != 2.5 {
		t.Fatalf("division = %v, want 2.5", row[2])
	}
	if row[3].I != -1 {
		t.Fatalf("negation = %v", row[3])
	}
	// Division by zero yields NULL.
	r = mustExec(t, e, `SELECT 1 / 0 AS d FROM item WHERE id = 1`)
	if !r.Rows[0][0].IsNull() {
		t.Fatalf("1/0 = %v, want NULL", r.Rows[0][0])
	}
}

func TestPKFastPath(t *testing.T) {
	e := newTestDB(t)
	r := mustExec(t, e, `SELECT name FROM item WHERE id = 3`)
	if len(r.Rows) != 1 || r.Rows[0][0].S != "cherry" {
		t.Fatalf("rows = %v", r.Rows)
	}
	if r.Scanned != 1 {
		t.Fatalf("Scanned = %d, want 1 (index lookup)", r.Scanned)
	}
	// Miss.
	r = mustExec(t, e, `SELECT name FROM item WHERE id = 99`)
	if len(r.Rows) != 0 {
		t.Fatalf("rows = %v", r.Rows)
	}
	// Full scan path counts all rows.
	r = mustExec(t, e, `SELECT name FROM item WHERE stock = 100`)
	if r.Scanned != 4 {
		t.Fatalf("Scanned = %d, want 4", r.Scanned)
	}
}

func TestJoinHash(t *testing.T) {
	e := newTestDB(t)
	r := mustExec(t, e, `SELECT orders.oid, item.name FROM orders JOIN item ON orders.item_id = item.id WHERE orders.cust = 'ann' ORDER BY oid`)
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %v", r.Rows)
	}
	if r.Rows[0][1].S != "apple" || r.Rows[1][1].S != "apple" {
		t.Fatalf("join result wrong: %v", r.Rows)
	}
}

func TestJoinAliases(t *testing.T) {
	e := newTestDB(t)
	r := mustExec(t, e, `SELECT o.qty, i.price FROM orders o JOIN item i ON o.item_id = i.id WHERE i.name = 'cherry'`)
	if len(r.Rows) != 1 || r.Rows[0][0].I != 2 {
		t.Fatalf("rows = %v", r.Rows)
	}
}

func TestJoinNestedLoopFallback(t *testing.T) {
	e := newTestDB(t)
	// Non-equi join condition forces the nested-loop path.
	r := mustExec(t, e, `SELECT o.oid FROM orders o JOIN item i ON o.item_id < i.id WHERE i.id = 3`)
	// orders with item_id < 3: 10(1), 11(2), 12(1) -> 3 rows.
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %v", r.Rows)
	}
}

func TestAggregates(t *testing.T) {
	e := newTestDB(t)
	r := mustExec(t, e, `SELECT COUNT(*), SUM(stock), AVG(price), MIN(price), MAX(price) FROM item`)
	row := r.Rows[0]
	if row[0].I != 4 {
		t.Fatalf("COUNT = %v", row[0])
	}
	if row[1].I != 160 {
		t.Fatalf("SUM = %v", row[1])
	}
	if row[2].F != (1.5+0.5+5.0+7.25)/4 {
		t.Fatalf("AVG = %v", row[2])
	}
	if row[3].F != 0.5 || row[4].F != 7.25 {
		t.Fatalf("MIN/MAX = %v %v", row[3], row[4])
	}
}

func TestGroupBy(t *testing.T) {
	e := newTestDB(t)
	r := mustExec(t, e, `SELECT cust, SUM(qty) AS total FROM orders GROUP BY cust ORDER BY total DESC`)
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %v", r.Rows)
	}
	if r.Rows[0][0].S != "bob" || r.Rows[0][1].I != 5 {
		t.Fatalf("first group = %v", r.Rows[0])
	}
	// ann: 3+1=4 then cat: 2.
	if r.Rows[1][1].I != 4 || r.Rows[2][1].I != 2 {
		t.Fatalf("groups = %v", r.Rows)
	}
}

func TestGroupByHaving(t *testing.T) {
	e := newTestDB(t)
	r := mustExec(t, e, `SELECT cust, COUNT(*) AS n FROM orders GROUP BY cust HAVING COUNT(*) > 1`)
	if len(r.Rows) != 1 || r.Rows[0][0].S != "ann" {
		t.Fatalf("rows = %v", r.Rows)
	}
}

func TestAggregateOverEmptyInput(t *testing.T) {
	e := newTestDB(t)
	r := mustExec(t, e, `SELECT COUNT(*), SUM(qty) FROM orders WHERE cust = 'nobody'`)
	if len(r.Rows) != 1 || r.Rows[0][0].I != 0 || !r.Rows[0][1].IsNull() {
		t.Fatalf("rows = %v", r.Rows)
	}
}

func TestDistinct(t *testing.T) {
	e := newTestDB(t)
	r := mustExec(t, e, `SELECT DISTINCT cust FROM orders ORDER BY cust`)
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %v", r.Rows)
	}
}

func TestOrderByMultiKeyAndLimit(t *testing.T) {
	e := newTestDB(t)
	r := mustExec(t, e, `SELECT cust, qty FROM orders ORDER BY cust ASC, qty DESC LIMIT 2`)
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %v", r.Rows)
	}
	if r.Rows[0][0].S != "ann" || r.Rows[0][1].I != 3 || r.Rows[1][1].I != 1 {
		t.Fatalf("order wrong: %v", r.Rows)
	}
	r = mustExec(t, e, `SELECT oid FROM orders ORDER BY oid LIMIT 0`)
	if len(r.Rows) != 0 {
		t.Fatalf("LIMIT 0 returned rows")
	}
}

func TestUpdate(t *testing.T) {
	e := newTestDB(t)
	r := mustExec(t, e, `UPDATE item SET stock = stock - 10 WHERE id = 1`)
	if r.Affected != 1 {
		t.Fatalf("Affected = %d", r.Affected)
	}
	got := mustExec(t, e, `SELECT stock FROM item WHERE id = 1`)
	if got.Rows[0][0].I != 90 {
		t.Fatalf("stock = %v", got.Rows[0][0])
	}
	// Multi-row update.
	r = mustExec(t, e, `UPDATE item SET price = price * 2 WHERE stock > 0`)
	if r.Affected != 3 {
		t.Fatalf("Affected = %d, want 3", r.Affected)
	}
}

func TestUpdatePrimaryKey(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, `UPDATE item SET id = 100 WHERE id = 1`)
	r := mustExec(t, e, `SELECT name FROM item WHERE id = 100`)
	if len(r.Rows) != 1 || r.Rows[0][0].S != "apple" {
		t.Fatalf("pk move failed: %v", r.Rows)
	}
	if r.Scanned != 1 {
		t.Fatalf("index not maintained after pk update")
	}
	// Moving onto an existing key must fail.
	if _, err := e.Exec(`UPDATE item SET id = 2 WHERE id = 100`); err == nil {
		t.Fatal("duplicate pk accepted")
	}
}

func TestDelete(t *testing.T) {
	e := newTestDB(t)
	r := mustExec(t, e, `DELETE FROM orders WHERE cust = 'ann'`)
	if r.Affected != 2 {
		t.Fatalf("Affected = %d", r.Affected)
	}
	got := mustExec(t, e, `SELECT COUNT(*) FROM orders`)
	if got.Rows[0][0].I != 2 {
		t.Fatalf("count = %v", got.Rows[0][0])
	}
	// PK index must be rebuilt.
	got = mustExec(t, e, `SELECT cust FROM orders WHERE oid = 11`)
	if len(got.Rows) != 1 || got.Rows[0][0].S != "bob" {
		t.Fatalf("index broken after delete: %v", got.Rows)
	}
}

func TestInsertWithColumnList(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, `INSERT INTO item (id, name) VALUES (9, 'elder')`)
	r := mustExec(t, e, `SELECT price, stock FROM item WHERE id = 9`)
	if !r.Rows[0][0].IsNull() || !r.Rows[0][1].IsNull() {
		t.Fatalf("unlisted columns not NULL: %v", r.Rows[0])
	}
}

func TestErrors(t *testing.T) {
	e := newTestDB(t)
	bad := []string{
		`SELECT * FROM missing`,
		`SELECT nope FROM item`,
		`SELECT * FROM item WHERE`,
		`INSERT INTO item VALUES (1, 'dup', 0, 0)`, // duplicate pk
		`INSERT INTO item (id) VALUES (20, 21)`,    // arity
		`INSERT INTO missing VALUES (1)`,
		`UPDATE missing SET x = 1`,
		`UPDATE item SET nope = 1`,
		`DELETE FROM missing`,
		`CREATE TABLE item (id INT)`, // exists
		`DROP TABLE missing`,
		`SELECT id FROM item ORDER BY missing_col`,
		`SELECT SUM(name) FRO item`,
		`TRUNCATE item`,
		`SELECT id FROM item WHERE name @ 'x'`,
		`SELECT id, FROM item`,
		`CREATE TABLE t2 (id BLOB)`,
		`CREATE TABLE t3 (id INT PRIMARY KEY, id TEXT)`,
		`CREATE TABLE t4 (a INT PRIMARY KEY, b INT PRIMARY KEY)`,
		`SELECT COUNT( FROM item`,
		`SELECT 'unterminated FROM item`,
	}
	for _, sql := range bad {
		if _, err := e.Exec(sql); err == nil {
			t.Errorf("%s: no error", sql)
		}
	}
}

func TestAggregateOutsideGroupError(t *testing.T) {
	e := newTestDB(t)
	// Aggregate in WHERE is rejected at evaluation.
	if _, err := e.Exec(`SELECT id FROM item WHERE SUM(price) > 1`); err == nil {
		t.Fatal("aggregate in WHERE accepted")
	}
}

func TestBulkInsertAndDataBytes(t *testing.T) {
	e := New()
	if err := e.CreateTable("t", []Column{{Name: "id", Type: KindInt, PrimaryKey: true}, {Name: "v", Type: KindText}}); err != nil {
		t.Fatal(err)
	}
	rows := make([]Row, 100)
	for i := range rows {
		rows[i] = Row{Int(int64(i)), Text(fmt.Sprintf("v%d", i))}
	}
	if err := e.BulkInsert("t", rows); err != nil {
		t.Fatal(err)
	}
	if e.Table("t").NumRows() != 100 {
		t.Fatalf("NumRows = %d", e.Table("t").NumRows())
	}
	if e.DataBytes() <= 0 {
		t.Fatal("DataBytes <= 0")
	}
	if err := e.BulkInsert("missing", rows); err == nil {
		t.Fatal("bulk insert into missing table accepted")
	}
	if err := e.BulkInsert("t", []Row{{Int(0), Text("dup")}}); err == nil {
		t.Fatal("duplicate pk in bulk insert accepted")
	}
	// Type violation.
	if err := e.BulkInsert("t", []Row{{Text("x"), Text("y")}}); err == nil {
		t.Fatal("type violation accepted")
	}
}

func TestDropTable(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, `DROP TABLE orders`)
	if e.Table("orders") != nil {
		t.Fatal("table still present")
	}
	if got := e.Tables(); len(got) != 1 || got[0] != "item" {
		t.Fatalf("Tables = %v", got)
	}
}

func TestValueCompareAndString(t *testing.T) {
	if Compare(Int(1), Float(1.0)) != 0 {
		t.Error("int/float coercion broken")
	}
	if Compare(Null, Int(0)) >= 0 {
		t.Error("NULL must sort first")
	}
	if Compare(Text("a"), Int(5)) <= 0 {
		t.Error("text must sort after numbers")
	}
	if Compare(Text("a"), Text("b")) >= 0 {
		t.Error("text compare broken")
	}
	for v, want := range map[Value]string{
		Int(5):      "5",
		Float(2.5):  "2.5",
		Text("x"):   "x",
		Null:        "NULL",
		Bool(true):  "1",
		Bool(false): "0",
	} {
		if v.String() != want {
			t.Errorf("String(%v) = %q want %q", v.K, v.String(), want)
		}
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "x%", false},
		{"", "%", true},
		{"", "_", false},
		{"ab", "a_b", false},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v", c.s, c.p, got)
		}
	}
}

func TestAnalyzeSelect(t *testing.T) {
	e := newTestDB(t)
	schema := SchemaOf(e)
	info, err := Analyze(`SELECT i.name, SUM(o.qty) FROM orders o JOIN item i ON o.item_id = i.id WHERE o.cust = 'ann' AND i.price BETWEEN 1 AND 5 GROUP BY i.name`, schema)
	if err != nil {
		t.Fatal(err)
	}
	if info.Write {
		t.Error("SELECT marked as write")
	}
	if len(info.Tables) != 2 || info.Tables[0] != "item" || info.Tables[1] != "orders" {
		t.Fatalf("Tables = %v", info.Tables)
	}
	wantCols := []string{"item.id", "item.name", "item.price", "orders.cust", "orders.item_id", "orders.oid", "orders.qty"}
	if strings.Join(info.Columns, ",") != strings.Join(wantCols, ",") {
		t.Fatalf("Columns = %v, want %v", info.Columns, wantCols)
	}
	if len(info.Predicates) != 2 {
		t.Fatalf("Predicates = %v", info.Predicates)
	}
}

func TestAnalyzeWrites(t *testing.T) {
	e := newTestDB(t)
	schema := SchemaOf(e)
	info, err := Analyze(`UPDATE item SET stock = stock - 1 WHERE id = 7`, schema)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Write {
		t.Error("UPDATE not marked as write")
	}
	if len(info.Tables) != 1 || info.Tables[0] != "item" {
		t.Fatalf("Tables = %v", info.Tables)
	}
	if len(info.Predicates) != 1 || info.Predicates[0].Column != "id" || info.Predicates[0].Op != "=" {
		t.Fatalf("Predicates = %v", info.Predicates)
	}

	info, err = Analyze(`INSERT INTO orders VALUES (1, 2, 3, 'x')`, schema)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Write || len(info.Columns) != 4 {
		t.Fatalf("insert analysis: %+v", info)
	}

	info, err = Analyze(`DELETE FROM orders WHERE qty < 1`, schema)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Write || len(info.Predicates) != 1 {
		t.Fatalf("delete analysis: %+v", info)
	}
}

func TestAnalyzeStar(t *testing.T) {
	e := newTestDB(t)
	info, err := Analyze(`SELECT * FROM item`, SchemaOf(e))
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Columns) != 4 {
		t.Fatalf("Columns = %v", info.Columns)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	e := newTestDB(t)
	schema := SchemaOf(e)
	for _, sql := range []string{
		`SELECT * FROM missing`,
		`SELECT nope FROM item`,
		`SELECT x FROM`,
	} {
		if _, err := Analyze(sql, schema); err == nil {
			t.Errorf("%s: no error", sql)
		}
	}
}

func TestAnalyzeFlippedPredicate(t *testing.T) {
	e := newTestDB(t)
	info, err := Analyze(`SELECT id FROM item WHERE 5 < price`, SchemaOf(e))
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Predicates) != 1 || info.Predicates[0].Op != ">" {
		t.Fatalf("Predicates = %v (flip failed)", info.Predicates)
	}
}

// naiveFilter is an independent oracle: filter rows of a single table by
// evaluating a comparison directly.
func naiveFilter(rows []Row, col int, op string, v Value) int {
	n := 0
	for _, r := range rows {
		c := Compare(r[col], v)
		ok := false
		switch op {
		case "<":
			ok = c < 0
		case "<=":
			ok = c <= 0
		case ">":
			ok = c > 0
		case ">=":
			ok = c >= 0
		case "=":
			ok = c == 0
		}
		if r[col].IsNull() {
			ok = false
		}
		if ok {
			n++
		}
	}
	return n
}

// TestPropertyFilterVsOracle: random tables and random range predicates
// must agree with the naive oracle.
func TestPropertyFilterVsOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		if err := e.CreateTable("t", []Column{
			{Name: "id", Type: KindInt, PrimaryKey: true},
			{Name: "v", Type: KindInt},
		}); err != nil {
			return false
		}
		n := 1 + rng.Intn(60)
		rows := make([]Row, n)
		for i := 0; i < n; i++ {
			rows[i] = Row{Int(int64(i)), Int(int64(rng.Intn(20)))}
		}
		if err := e.BulkInsert("t", rows); err != nil {
			return false
		}
		ops := []string{"<", "<=", ">", ">=", "="}
		op := ops[rng.Intn(len(ops))]
		pivot := int64(rng.Intn(20))
		r, err := e.Exec(fmt.Sprintf("SELECT id FROM t WHERE v %s %d", op, pivot))
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		want := naiveFilter(rows, 1, op, Int(pivot))
		if len(r.Rows) != want {
			t.Logf("seed %d: got %d want %d (op %s %d)", seed, len(r.Rows), want, op, pivot)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyGroupSumVsOracle: GROUP BY SUM must match manual
// aggregation.
func TestPropertyGroupSumVsOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		if err := e.CreateTable("t", []Column{
			{Name: "id", Type: KindInt, PrimaryKey: true},
			{Name: "g", Type: KindInt},
			{Name: "v", Type: KindInt},
		}); err != nil {
			return false
		}
		n := 1 + rng.Intn(80)
		want := map[int64]int64{}
		rows := make([]Row, n)
		for i := 0; i < n; i++ {
			g := int64(rng.Intn(5))
			v := int64(rng.Intn(100))
			want[g] += v
			rows[i] = Row{Int(int64(i)), Int(g), Int(v)}
		}
		if err := e.BulkInsert("t", rows); err != nil {
			return false
		}
		r, err := e.Exec(`SELECT g, SUM(v) FROM t GROUP BY g`)
		if err != nil {
			return false
		}
		if len(r.Rows) != len(want) {
			return false
		}
		for _, row := range r.Rows {
			if want[row[0].I] != row[1].I {
				t.Logf("seed %d: group %d sum %d want %d", seed, row[0].I, row[1].I, want[row[0].I])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyJoinVsOracle: hash join must agree with a nested-loop
// count.
func TestPropertyJoinVsOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		if err := e.CreateTable("a", []Column{{Name: "id", Type: KindInt, PrimaryKey: true}, {Name: "k", Type: KindInt}}); err != nil {
			return false
		}
		if err := e.CreateTable("b", []Column{{Name: "id", Type: KindInt, PrimaryKey: true}, {Name: "k", Type: KindInt}}); err != nil {
			return false
		}
		na, nb := 1+rng.Intn(30), 1+rng.Intn(30)
		ka := make([]int64, na)
		kb := make([]int64, nb)
		rowsA := make([]Row, na)
		for i := range rowsA {
			ka[i] = int64(rng.Intn(8))
			rowsA[i] = Row{Int(int64(i)), Int(ka[i])}
		}
		rowsB := make([]Row, nb)
		for i := range rowsB {
			kb[i] = int64(rng.Intn(8))
			rowsB[i] = Row{Int(int64(i)), Int(kb[i])}
		}
		if e.BulkInsert("a", rowsA) != nil || e.BulkInsert("b", rowsB) != nil {
			return false
		}
		r, err := e.Exec(`SELECT COUNT(*) FROM a JOIN b ON a.k = b.k`)
		if err != nil {
			return false
		}
		want := int64(0)
		for _, x := range ka {
			for _, y := range kb {
				if x == y {
					want++
				}
			}
		}
		return r.Rows[0][0].I == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentReads(t *testing.T) {
	e := newTestDB(t)
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 50; j++ {
				if _, err := e.Exec(`SELECT COUNT(*) FROM item WHERE price > 1`); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestConcurrentReadWrite(t *testing.T) {
	e := newTestDB(t)
	done := make(chan error, 4)
	for i := 0; i < 2; i++ {
		go func(base int) {
			for j := 0; j < 30; j++ {
				sql := fmt.Sprintf(`INSERT INTO orders VALUES (%d, 1, 1, 'w')`, 1000+base*100+j)
				if _, err := e.Exec(sql); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(i)
		go func() {
			for j := 0; j < 30; j++ {
				if _, err := e.Exec(`SELECT SUM(qty) FROM orders`); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	r := mustExec(t, e, `SELECT COUNT(*) FROM orders`)
	if r.Rows[0][0].I != 4+60 {
		t.Fatalf("count = %v, want 64", r.Rows[0][0])
	}
}

func TestStringEscapesAndComments(t *testing.T) {
	e := New()
	mustExec(t, e, `CREATE TABLE t (id INT PRIMARY KEY, s TEXT)`)
	mustExec(t, e, `INSERT INTO t VALUES (1, 'it''s') -- trailing comment`)
	r := mustExec(t, e, `SELECT s FROM t WHERE id = 1`)
	if r.Rows[0][0].S != "it's" {
		t.Fatalf("escape broken: %q", r.Rows[0][0].S)
	}
}

func TestVarcharLengthAndFloatLiterals(t *testing.T) {
	e := New()
	mustExec(t, e, `CREATE TABLE t (id INT PRIMARY KEY, s VARCHAR(20), f FLOAT)`)
	mustExec(t, e, `INSERT INTO t VALUES (1, 'x', 1.5e2)`)
	r := mustExec(t, e, `SELECT f FROM t WHERE id = 1`)
	if r.Rows[0][0].F != 150 {
		t.Fatalf("float literal = %v", r.Rows[0][0])
	}
}

func TestCountDistinct(t *testing.T) {
	e := newTestDB(t)
	// orders custs: ann, bob, ann, cat -> 3 distinct.
	r := mustExec(t, e, `SELECT COUNT(DISTINCT cust), COUNT(cust) FROM orders`)
	if r.Rows[0][0].I != 3 {
		t.Fatalf("COUNT(DISTINCT) = %v, want 3", r.Rows[0][0])
	}
	if r.Rows[0][1].I != 4 {
		t.Fatalf("COUNT = %v, want 4", r.Rows[0][1])
	}
	// SUM(DISTINCT): item_ids 1,2,1,3 -> 1+2+3 = 6.
	r = mustExec(t, e, `SELECT SUM(DISTINCT item_id) FROM orders`)
	if r.Rows[0][0].I != 6 {
		t.Fatalf("SUM(DISTINCT) = %v, want 6", r.Rows[0][0])
	}
	// Grouped distinct.
	r = mustExec(t, e, `SELECT cust, COUNT(DISTINCT item_id) AS n FROM orders GROUP BY cust ORDER BY cust`)
	if r.Rows[0][0].S != "ann" || r.Rows[0][1].I != 1 {
		t.Fatalf("ann distinct items = %v", r.Rows[0])
	}
}

func TestSecondaryIndex(t *testing.T) {
	e := newTestDB(t)
	if err := e.CreateIndex("orders", "cust"); err != nil {
		t.Fatal(err)
	}
	if got := e.Indexes("orders"); len(got) != 1 || got[0] != "cust" {
		t.Fatalf("Indexes = %v", got)
	}
	// Indexed point lookup scans only the matching rows.
	r := mustExec(t, e, `SELECT oid FROM orders WHERE cust = 'ann'`)
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %v", r.Rows)
	}
	if r.Scanned != 2 {
		t.Fatalf("Scanned = %d, want 2 (index hit)", r.Scanned)
	}
	// Writes invalidate; the next lookup sees fresh data.
	mustExec(t, e, `INSERT INTO orders VALUES (14, 2, 1, 'ann')`)
	r = mustExec(t, e, `SELECT oid FROM orders WHERE cust = 'ann'`)
	if len(r.Rows) != 3 {
		t.Fatalf("rows after insert = %v", r.Rows)
	}
	mustExec(t, e, `UPDATE orders SET cust = 'zed' WHERE oid = 10`)
	r = mustExec(t, e, `SELECT oid FROM orders WHERE cust = 'ann'`)
	if len(r.Rows) != 2 {
		t.Fatalf("rows after update = %v", r.Rows)
	}
	mustExec(t, e, `DELETE FROM orders WHERE cust = 'ann'`)
	r = mustExec(t, e, `SELECT oid FROM orders WHERE cust = 'ann'`)
	if len(r.Rows) != 0 {
		t.Fatalf("rows after delete = %v", r.Rows)
	}
	// Results must match an unindexed engine on random data.
	r2 := mustExec(t, e, `SELECT COUNT(*) FROM orders WHERE cust = 'zed'`)
	if r2.Rows[0][0].I != 1 {
		t.Fatalf("count = %v", r2.Rows[0][0])
	}
}

func TestCreateIndexErrors(t *testing.T) {
	e := newTestDB(t)
	if err := e.CreateIndex("missing", "x"); err == nil {
		t.Error("unknown table accepted")
	}
	if err := e.CreateIndex("orders", "nope"); err == nil {
		t.Error("unknown column accepted")
	}
	if err := e.CreateIndex("orders", "oid"); err == nil {
		t.Error("primary key index accepted")
	}
	if err := e.CreateIndex("orders", "cust"); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateIndex("orders", "cust"); err == nil {
		t.Error("duplicate index accepted")
	}
	if e.Indexes("missing") != nil {
		t.Error("Indexes on missing table not nil")
	}
}

// TestIndexConcurrentReaders: concurrent indexed reads while a writer
// churns must stay consistent (exercises the lazy-rebuild locking).
func TestIndexConcurrentReaders(t *testing.T) {
	e := newTestDB(t)
	if err := e.CreateIndex("orders", "cust"); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 9)
	for w := 0; w < 8; w++ {
		go func() {
			for i := 0; i < 60; i++ {
				r, err := e.Exec(`SELECT COUNT(*) FROM orders WHERE cust = 'ann'`)
				if err != nil {
					done <- err
					return
				}
				if n := r.Rows[0][0].I; n < 2 {
					done <- fmt.Errorf("indexed count %d < 2", n)
					return
				}
			}
			done <- nil
		}()
	}
	go func() {
		for i := 0; i < 40; i++ {
			if _, err := e.Exec(fmt.Sprintf(`INSERT INTO orders VALUES (%d, 1, 1, 'ann')`, 100+i)); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 9; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
