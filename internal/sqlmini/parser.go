package sqlmini

import (
	"fmt"
	"strconv"
)

// Parse parses a single SQL statement.
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	// Optional trailing semicolon.
	if p.peek().kind == tokSymbol && p.peek().text == ";" {
		p.next()
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf("unexpected %q after statement", p.peek().text)
	}
	return st, nil
}

type parser struct {
	toks []token
	i    int
	src  string
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sqlmini: parse error at offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

func (p *parser) accept(kw string) bool {
	if p.peek().kind == tokKeyword && p.peek().text == kw {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.accept(kw) {
		return p.errf("expected %s, got %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) acceptSym(s string) bool {
	if p.peek().kind == tokSymbol && p.peek().text == s {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectSym(s string) error {
	if !p.acceptSym(s) {
		return p.errf("expected %q, got %q", s, p.peek().text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errf("expected identifier, got %q", t.text)
	}
	p.next()
	return t.text, nil
}

func (p *parser) statement() (Statement, error) {
	t := p.peek()
	if t.kind != tokKeyword {
		return nil, p.errf("expected statement keyword, got %q", t.text)
	}
	switch t.text {
	case "SELECT":
		return p.selectStmt()
	case "INSERT":
		return p.insertStmt()
	case "UPDATE":
		return p.updateStmt()
	case "DELETE":
		return p.deleteStmt()
	case "CREATE":
		return p.createStmt()
	case "DROP":
		return p.dropStmt()
	}
	return nil, p.errf("unsupported statement %q", t.text)
}

func (p *parser) selectStmt() (Statement, error) {
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	st := &SelectStmt{Limit: -1}
	st.Distinct = p.accept("DISTINCT")
	for {
		if p.acceptSym("*") {
			st.Items = append(st.Items, SelectItem{Star: true})
		} else {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.accept("AS") {
				a, err := p.ident()
				if err != nil {
					return nil, err
				}
				item.Alias = a
			} else if p.peek().kind == tokIdent {
				item.Alias = p.next().text
			}
			st.Items = append(st.Items, item)
		}
		if !p.acceptSym(",") {
			break
		}
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	tbl, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Table = tbl
	if p.peek().kind == tokIdent {
		st.Alias = p.next().text
	}
	for p.accept("INNER") || p.peek().kind == tokKeyword && p.peek().text == "JOIN" {
		if err := p.expectKw("JOIN"); err != nil {
			return nil, err
		}
		jt, err := p.ident()
		if err != nil {
			return nil, err
		}
		j := JoinClause{Table: jt}
		if p.peek().kind == tokIdent {
			j.Alias = p.next().text
		}
		if err := p.expectKw("ON"); err != nil {
			return nil, err
		}
		on, err := p.expr()
		if err != nil {
			return nil, err
		}
		j.On = on
		st.Joins = append(st.Joins, j)
	}
	if p.accept("WHERE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	if p.accept("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, e)
			if !p.acceptSym(",") {
				break
			}
		}
	}
	if p.accept("HAVING") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Having = e
	}
	if p.accept("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			it := OrderItem{Expr: e}
			if p.accept("DESC") {
				it.Desc = true
			} else {
				p.accept("ASC")
			}
			st.OrderBy = append(st.OrderBy, it)
			if !p.acceptSym(",") {
				break
			}
		}
	}
	if p.accept("LIMIT") {
		t := p.peek()
		if t.kind != tokInt {
			return nil, p.errf("expected integer after LIMIT")
		}
		p.next()
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, p.errf("bad LIMIT %q", t.text)
		}
		st.Limit = n
	}
	return st, nil
}

func (p *parser) insertStmt() (Statement, error) {
	if err := p.expectKw("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	tbl, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: tbl}
	if p.acceptSym("(") {
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, c)
			if !p.acceptSym(",") {
				break
			}
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKw("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectSym("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.acceptSym(",") {
				break
			}
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if !p.acceptSym(",") {
			break
		}
	}
	return st, nil
}

func (p *parser) updateStmt() (Statement, error) {
	if err := p.expectKw("UPDATE"); err != nil {
		return nil, err
	}
	tbl, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &UpdateStmt{Table: tbl}
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	for {
		c, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym("="); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Set = append(st.Set, struct {
			Column string
			Expr   Expr
		}{c, e})
		if !p.acceptSym(",") {
			break
		}
	}
	if p.accept("WHERE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *parser) deleteStmt() (Statement, error) {
	if err := p.expectKw("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	tbl, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: tbl}
	if p.accept("WHERE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *parser) createStmt() (Statement, error) {
	if err := p.expectKw("CREATE"); err != nil {
		return nil, err
	}
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	tbl, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &CreateTableStmt{Table: tbl}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	for {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		col := Column{Name: name}
		t := p.peek()
		if t.kind != tokKeyword {
			return nil, p.errf("expected column type, got %q", t.text)
		}
		switch t.text {
		case "INT", "INTEGER":
			col.Type = KindInt
		case "FLOAT", "REAL":
			col.Type = KindFloat
		case "TEXT", "VARCHAR":
			col.Type = KindText
		default:
			return nil, p.errf("unsupported column type %q", t.text)
		}
		p.next()
		// VARCHAR(n): accept and ignore the length.
		if p.acceptSym("(") {
			if p.peek().kind != tokInt {
				return nil, p.errf("expected length in type")
			}
			p.next()
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
		}
		if p.accept("PRIMARY") {
			if err := p.expectKw("KEY"); err != nil {
				return nil, err
			}
			col.PrimaryKey = true
		}
		st.Columns = append(st.Columns, col)
		if !p.acceptSym(",") {
			break
		}
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) dropStmt() (Statement, error) {
	if err := p.expectKw("DROP"); err != nil {
		return nil, err
	}
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	tbl, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &DropTableStmt{Table: tbl}, nil
}

// Expression grammar (precedence climbing):
//
//	expr    := orExpr
//	orExpr  := andExpr (OR andExpr)*
//	andExpr := notExpr (AND notExpr)*
//	notExpr := NOT notExpr | cmpExpr
//	cmpExpr := addExpr ((=|<>|!=|<|<=|>|>=|LIKE) addExpr
//	         | [NOT] BETWEEN addExpr AND addExpr
//	         | [NOT] IN (expr, ...)
//	         | IS [NOT] NULL)?
//	addExpr := mulExpr ((+|-) mulExpr)*
//	mulExpr := unary ((*|/) unary)*
//	unary   := - unary | primary
//	primary := literal | agg | colref | ( expr )
func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.accept("OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.accept("AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.accept("NOT") {
		e, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &UnOp{Op: "NOT", E: e}, nil
	}
	return p.cmpExpr()
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	negate := false
	if p.peek().kind == tokKeyword && p.peek().text == "NOT" {
		// lookahead for NOT BETWEEN / NOT IN / NOT LIKE
		save := p.i
		p.next()
		switch p.peek().text {
		case "BETWEEN", "IN", "LIKE":
			negate = true
		default:
			p.i = save
			return l, nil
		}
	}
	t := p.peek()
	if t.kind == tokSymbol {
		switch t.text {
		case "=", "<", "<=", ">", ">=", "<>", "!=":
			p.next()
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			op := t.text
			if op == "!=" {
				op = "<>"
			}
			return &BinOp{Op: op, L: l, R: r}, nil
		}
	}
	if t.kind == tokKeyword {
		switch t.text {
		case "LIKE":
			p.next()
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			e := Expr(&BinOp{Op: "LIKE", L: l, R: r})
			if negate {
				e = &UnOp{Op: "NOT", E: e}
			}
			return e, nil
		case "BETWEEN":
			p.next()
			lo, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("AND"); err != nil {
				return nil, err
			}
			hi, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return &Between{E: l, Lo: lo, Hi: hi, Negate: negate}, nil
		case "IN":
			p.next()
			if err := p.expectSym("("); err != nil {
				return nil, err
			}
			var list []Expr
			for {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				list = append(list, e)
				if !p.acceptSym(",") {
					break
				}
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			return &InList{E: l, List: list, Negate: negate}, nil
		case "IS":
			p.next()
			neg := p.accept("NOT")
			if err := p.expectKw("NULL"); err != nil {
				return nil, err
			}
			return &IsNull{E: l, Negate: neg}, nil
		}
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "+" || t.text == "-") {
			p.next()
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = &BinOp{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "*" || t.text == "/") {
			p.next()
			r, err := p.unary()
			if err != nil {
				return nil, err
			}
			l = &BinOp{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) unary() (Expr, error) {
	if p.acceptSym("-") {
		e, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnOp{Op: "-", E: e}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokInt:
		p.next()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer %q", t.text)
		}
		return &Lit{Int(v)}, nil
	case tokFloat:
		p.next()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf("bad float %q", t.text)
		}
		return &Lit{Float(v)}, nil
	case tokString:
		p.next()
		return &Lit{Text(t.text)}, nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.next()
			return &Lit{Null}, nil
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			p.next()
			if err := p.expectSym("("); err != nil {
				return nil, err
			}
			ag := &Agg{Func: t.text}
			if t.text == "COUNT" && p.acceptSym("*") {
				// COUNT(*): nil operand.
			} else {
				ag.Distinct = p.accept("DISTINCT")
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				ag.E = e
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			return ag, nil
		}
		return nil, p.errf("unexpected keyword %q in expression", t.text)
	case tokIdent:
		p.next()
		if p.acceptSym(".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ColRef{Table: t.text, Column: col}, nil
		}
		return &ColRef{Column: t.text}, nil
	case tokSymbol:
		if t.text == "(" {
			p.next()
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("unexpected %q in expression", t.text)
}
