package sqlmini

import (
	"hash/fnv"
)

// TableChecksum returns an order-independent checksum of a table's
// schema and contents: each row hashes independently (FNV-1a over the
// canonical key forms of its values) and the row hashes combine by
// modular addition, so two replicas that hold the same set of rows in
// different physical order still agree. The cluster's recovery path
// compares these across replicas after a redo-log replay.
func (e *Engine) TableChecksum(name string) (uint64, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.tables[name]
	if !ok {
		return 0, unknownTableError(name)
	}
	return tableChecksumLocked(t), nil
}

// Checksums returns the checksum of each named table (all tables when
// names is nil), computed under one read lock so the result is a
// consistent point-in-time view of the engine.
func (e *Engine) Checksums(names []string) (map[string]uint64, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if names == nil {
		names = make([]string, 0, len(e.tables))
		for n := range e.tables {
			names = append(names, n)
		}
	}
	out := make(map[string]uint64, len(names))
	for _, n := range names {
		t, ok := e.tables[n]
		if !ok {
			return nil, unknownTableError(n)
		}
		out[n] = tableChecksumLocked(t)
	}
	return out, nil
}

// tableChecksumLocked hashes schema then rows; caller holds e.mu.
func tableChecksumLocked(t *Table) uint64 {
	h := fnv.New64a()
	for _, c := range t.Cols {
		h.Write([]byte(c.Name))
		h.Write([]byte{byte(c.Type)})
		if c.PrimaryKey {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	sum := h.Sum64()
	var rows uint64
	for _, r := range t.rows {
		rh := fnv.New64a()
		for _, v := range r {
			rh.Write([]byte(v.key()))
			rh.Write([]byte{0xff})
		}
		rows += rh.Sum64() // modular addition: order-independent
	}
	// Mix in the row count so {r, r} vs {r} with a colliding sum still
	// differ, and combine with the schema hash.
	return sum ^ rows ^ (uint64(len(t.rows)) * 0x9e3779b97f4a7c15)
}
