package sqlmini

import (
	"errors"
	"sync/atomic"
	"time"
)

// ErrInjected is returned by an engine whose fault injector decided to
// fail this statement (error-rate faults). The cluster's failover path
// treats it like any other backend error.
var ErrInjected = errors.New("sqlmini: injected fault")

// ErrCrashed is returned by a crashed engine: every statement fails
// until Revive. It models a killed backend process under the paper's
// processing model — the data is still there, the node just stopped
// answering.
var ErrCrashed = errors.New("sqlmini: engine crashed (injected)")

// Fault is a pluggable fault injector on the engine execution path:
// every statement first passes through the injector, which can add
// latency, fail with probability ErrorRate, or fail unconditionally
// while crashed. The zero value injects nothing.
//
// Error-rate draws use a deterministic splitmix64 sequence (seeded by
// Seed) instead of a shared math/rand source, so chaos runs are
// reproducible and the hot path stays lock-free.
type Fault struct {
	// ErrorRate is the probability in [0, 1] that a statement fails
	// with ErrInjected.
	ErrorRate float64
	// Latency is added to every statement before it executes.
	Latency time.Duration
	// Seed perturbs the deterministic error-rate sequence.
	Seed uint64

	crashed atomic.Bool
	seq     atomic.Uint64
}

// Crash makes every subsequent statement fail with ErrCrashed.
func (f *Fault) Crash() { f.crashed.Store(true) }

// Revive clears a crash.
func (f *Fault) Revive() { f.crashed.Store(false) }

// Crashed reports whether the engine is currently crashed.
func (f *Fault) Crashed() bool { return f.crashed.Load() }

// splitmix64 is the standard 64-bit mixer (Steele et al.), enough to
// turn a counter into an i.i.d.-looking uniform stream.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// inject runs the fault decision for one statement. It is called by
// the engine at the top of ExecStmtContext.
func (f *Fault) inject() error {
	if f.Latency > 0 {
		//qcpa:nocancel deliberately injected latency, bounded by f.Latency
		time.Sleep(f.Latency)
	}
	if f.crashed.Load() {
		return ErrCrashed
	}
	if f.ErrorRate > 0 {
		n := f.seq.Add(1)
		u := float64(splitmix64(n^f.Seed)>>11) / float64(uint64(1)<<53)
		if u < f.ErrorRate || f.ErrorRate >= 1 {
			return ErrInjected
		}
	}
	return nil
}

// SetFault installs (or, with nil, removes) a fault injector on the
// engine. Safe to call while statements execute; in-flight statements
// that already passed the injector complete normally.
func (e *Engine) SetFault(f *Fault) { e.fault.Store(f) }

// FaultInjected reports the installed injector, or nil.
func (e *Engine) FaultInjected() *Fault { return e.fault.Load() }

// checkFault applies the installed injector, if any.
func (e *Engine) checkFault() error {
	if f := e.fault.Load(); f != nil {
		return f.inject()
	}
	return nil
}

// IsEngineFailure reports whether an execution error is an
// engine-level failure (the node, not the statement): such errors are
// worth retrying on another replica, while statement errors (unknown
// column, duplicate key, …) fail identically everywhere. With embedded
// engines the only node-level failures are the injected ones; a
// networked backend substrate would add its transport errors here.
func IsEngineFailure(err error) bool {
	return errors.Is(err, ErrInjected) || errors.Is(err, ErrCrashed)
}
