package sqlmini

import (
	"fmt"
	"sync"
)

// secondaryIndex is a hash index over one column, rebuilt lazily: any
// write to the table marks it dirty and the next indexed lookup
// rebuilds it. This favors the CDBS read patterns (long read phases
// between reallocation-driven reloads) without complicating the write
// path. The index's own mutex serializes lazy rebuilds among
// concurrent readers (who hold only the engine's shared lock).
type secondaryIndex struct {
	mu      sync.Mutex
	col     int
	buckets map[string][]int // value key -> row indices
	dirty   bool
}

// CreateIndex builds a secondary hash index on table.column. Point
// lookups (WHERE column = literal) on the table then avoid full scans.
// Indexing the primary key is redundant (it always has one) and is
// rejected, as is indexing the same column twice.
func (e *Engine) CreateIndex(table, column string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.tables[table]
	if !ok {
		return unknownTableError(table)
	}
	ci := t.ColumnIndex(column)
	if ci < 0 {
		return fmt.Errorf("sqlmini: unknown column %q in table %q", column, table)
	}
	if ci == t.pkCol {
		return fmt.Errorf("sqlmini: column %q is the primary key (already indexed)", column)
	}
	for _, idx := range t.indexes {
		if idx.col == ci {
			return fmt.Errorf("sqlmini: column %q already indexed", column)
		}
	}
	t.indexes = append(t.indexes, &secondaryIndex{col: ci, dirty: true})
	return nil
}

// Indexes returns the secondary-indexed column names of a table.
func (e *Engine) Indexes(table string) []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.tables[table]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(t.indexes))
	for _, idx := range t.indexes {
		out = append(out, t.Cols[idx.col].Name)
	}
	return out
}

// markDirty flags every secondary index of the table for rebuild.
// Callers hold the engine write lock.
func (t *Table) markDirty() {
	for _, idx := range t.indexes {
		idx.mu.Lock()
		idx.dirty = true
		idx.mu.Unlock()
	}
}

// lookupIndex returns the matching row indices for column = v via a
// secondary index, rebuilding it if stale. The boolean reports whether
// an index on that column exists. Callers hold at least the engine
// read lock (so the rows are stable); the index mutex serializes the
// rebuild among concurrent readers.
func (t *Table) lookupIndex(col int, v Value) ([]int, bool) {
	for _, idx := range t.indexes {
		if idx.col != col {
			continue
		}
		idx.mu.Lock()
		if idx.dirty {
			idx.buckets = make(map[string][]int, len(t.rows))
			for i, r := range t.rows {
				k := r[col].key()
				idx.buckets[k] = append(idx.buckets[k], i)
			}
			idx.dirty = false
		}
		rows := idx.buckets[v.key()]
		idx.mu.Unlock()
		return rows, true
	}
	return nil, false
}
