package sqlmini

import (
	"fmt"
	"sync"
)

// secondaryIndex is a hash index over one column, built lazily per
// read view: the Table holds the index definitions (col only), and
// each published tableView carries its own instances whose buckets are
// built from the view's immutable rows on the first indexed lookup.
// This favors the CDBS read patterns (long read phases between
// reallocation-driven reloads) without complicating the write path.
// The index's own mutex serializes the lazy build among concurrent
// readers of the same view.
//
//qcpa:lazycache idempotent rebuild from the view's immutable rows, serialized by mu
type secondaryIndex struct {
	mu      sync.Mutex
	col     int
	buckets map[string][]int // value key -> row indices
	dirty   bool
}

// CreateIndex builds a secondary hash index on table.column. Point
// lookups (WHERE column = literal) on the table then avoid full scans.
// Indexing the primary key is redundant (it always has one) and is
// rejected, as is indexing the same column twice.
func (e *Engine) CreateIndex(table, column string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.tables[table]
	if !ok {
		return unknownTableError(table)
	}
	ci := t.ColumnIndex(column)
	if ci < 0 {
		return fmt.Errorf("sqlmini: unknown column %q in table %q", column, table)
	}
	if ci == t.pkCol {
		return fmt.Errorf("sqlmini: column %q is the primary key (already indexed)", column)
	}
	for _, idx := range t.indexes {
		if idx.col == ci {
			return fmt.Errorf("sqlmini: column %q already indexed", column)
		}
	}
	t.indexes = append(t.indexes, &secondaryIndex{col: ci, dirty: true})
	// Republish so the new index definition reaches readers: views cut
	// before this point simply scan. Cached plans chose their access
	// paths without this index, so drop them too.
	t.view = nil
	e.dirty = true
	e.InvalidatePlans()
	e.publishLocked()
	return nil
}

// Indexes returns the secondary-indexed column names of a table.
func (e *Engine) Indexes(table string) []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.tables[table]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(t.indexes))
	for _, idx := range t.indexes {
		out = append(out, t.Cols[idx.col].Name)
	}
	return out
}

// lookupIndex returns the matching row indices for column = v via a
// secondary index, building this view's buckets on first use. The
// boolean reports whether an index on that column exists. The view's
// rows are immutable, so the buckets are built exactly once; the index
// mutex serializes that build among concurrent readers of the view.
func (tv *tableView) lookupIndex(col int, v Value) ([]int, bool) {
	for _, idx := range tv.indexes {
		if idx.col != col {
			continue
		}
		idx.mu.Lock()
		if idx.dirty {
			idx.buckets = make(map[string][]int, len(tv.rows))
			for i, r := range tv.rows {
				k := r[col].key()
				idx.buckets[k] = append(idx.buckets[k], i)
			}
			idx.dirty = false
		}
		rows := idx.buckets[v.key()]
		idx.mu.Unlock()
		return rows, true
	}
	return nil, false
}
