package sqlmini

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"
)

// snapshotTable is the gob wire form of one table.
type snapshotTable struct {
	Name string
	Cols []Column
	Rows []Row
}

// snapshot is the gob wire form of an engine.
type snapshot struct {
	Version int
	Tables  []snapshotTable
}

const snapshotVersion = 1

// Snapshot serializes the complete engine state (schema and rows) with
// encoding/gob. It is the data-transport format of the physical
// allocation: the prototype ships snapshots between backends during
// reallocation and keeps cold copies for recovery.
func (e *Engine) Snapshot(w io.Writer) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	snap := snapshot{Version: snapshotVersion}
	names := make([]string, 0, len(e.tables))
	for n := range e.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t := e.tables[n]
		st := snapshotTable{Name: n, Cols: t.Cols, Rows: t.rows}
		snap.Tables = append(snap.Tables, st)
	}
	return gob.NewEncoder(w).Encode(&snap)
}

// SnapshotTables serializes only the named tables.
func (e *Engine) SnapshotTables(w io.Writer, tables []string) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	snap := snapshot{Version: snapshotVersion}
	sorted := append([]string(nil), tables...)
	sort.Strings(sorted)
	for _, n := range sorted {
		t, ok := e.tables[n]
		if !ok {
			return unknownTableError(n)
		}
		snap.Tables = append(snap.Tables, snapshotTable{Name: n, Cols: t.Cols, Rows: t.rows})
	}
	return gob.NewEncoder(w).Encode(&snap)
}

// Restore loads a snapshot into the engine. Tables that already exist
// are rejected (restore into a fresh engine, or drop first).
func (e *Engine) Restore(r io.Reader) error {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("sqlmini: decoding snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return fmt.Errorf("sqlmini: unsupported snapshot version %d", snap.Version)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, st := range snap.Tables {
		if _, dup := e.tables[st.Name]; dup {
			return fmt.Errorf("sqlmini: table %q already exists", st.Name)
		}
	}
	defer e.publishLocked()
	for _, st := range snap.Tables {
		t, err := newTable(st.Name, st.Cols)
		if err != nil {
			return err
		}
		for _, row := range st.Rows {
			cp := make(Row, len(row))
			copy(cp, row)
			if err := t.appendRow(cp); err != nil {
				return fmt.Errorf("sqlmini: restoring %q: %w", st.Name, err)
			}
		}
		e.tables[st.Name] = t
		e.dirty = true
	}
	// Restore lands whole tables at once (reallocation / migration
	// cutover): any cached plan may now target the wrong schema or a
	// wildly different cardinality.
	e.InvalidatePlans()
	return nil
}
