package sqlmini

// Expr is a SQL expression node.
type Expr interface{ isExpr() }

// Lit is a literal value.
type Lit struct{ V Value }

// ColRef references a column, optionally table-qualified.
type ColRef struct {
	Table  string // "" if unqualified
	Column string
}

// BinOp is a binary operation. Op is one of
// = <> < <= > >= + - * / AND OR LIKE.
type BinOp struct {
	Op   string
	L, R Expr
}

// UnOp is a unary operation: NOT or - (negation).
type UnOp struct {
	Op string
	E  Expr
}

// Between is "expr BETWEEN lo AND hi" (inclusive).
type Between struct {
	E, Lo, Hi Expr
	Negate    bool
}

// InList is "expr IN (v1, v2, ...)".
type InList struct {
	E      Expr
	List   []Expr
	Negate bool
}

// IsNull is "expr IS [NOT] NULL".
type IsNull struct {
	E      Expr
	Negate bool
}

// Agg is an aggregate function call: COUNT/SUM/AVG/MIN/MAX. A nil
// operand with Func COUNT is COUNT(*). Distinct marks
// COUNT(DISTINCT expr) and friends: only distinct operand values are
// accumulated.
type Agg struct {
	Func     string // upper-case
	E        Expr   // nil for COUNT(*)
	Distinct bool
}

func (*Lit) isExpr()     {}
func (*ColRef) isExpr()  {}
func (*BinOp) isExpr()   {}
func (*UnOp) isExpr()    {}
func (*Between) isExpr() {}
func (*InList) isExpr()  {}
func (*IsNull) isExpr()  {}
func (*Agg) isExpr()     {}

// SelectItem is one output column of a SELECT.
type SelectItem struct {
	Expr  Expr
	Alias string // "" if none
	Star  bool   // SELECT *
}

// JoinClause is one "JOIN table ON left = right" element.
type JoinClause struct {
	Table string
	Alias string
	On    Expr
}

// OrderItem is one ORDER BY element.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Statement is a parsed SQL statement.
type Statement interface{ isStmt() }

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	Table    string
	Alias    string
	Joins    []JoinClause
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int // -1 if absent
}

// InsertStmt is an INSERT statement; Columns empty means all columns in
// table order.
type InsertStmt struct {
	Table   string
	Columns []string
	Rows    [][]Expr
}

// UpdateStmt is an UPDATE statement.
type UpdateStmt struct {
	Table string
	Set   []struct {
		Column string
		Expr   Expr
	}
	Where Expr
}

// DeleteStmt is a DELETE statement.
type DeleteStmt struct {
	Table string
	Where Expr
}

// CreateTableStmt is a CREATE TABLE statement.
type CreateTableStmt struct {
	Table   string
	Columns []Column
}

// DropTableStmt is a DROP TABLE statement.
type DropTableStmt struct{ Table string }

func (*SelectStmt) isStmt()      {}
func (*InsertStmt) isStmt()      {}
func (*UpdateStmt) isStmt()      {}
func (*DeleteStmt) isStmt()      {}
func (*CreateTableStmt) isStmt() {}
func (*DropTableStmt) isStmt()   {}
