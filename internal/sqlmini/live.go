package sqlmini

import (
	"errors"
	"fmt"
)

// ErrUnknownTable is the sentinel wrapped by every unknown-table
// statement error. The cluster's read path matches it (IsMissingTable)
// to tell a stale route — the table was dropped by a live-migration
// cutover after the read was scheduled — from a genuine statement
// error that would fail identically on every replica.
var ErrUnknownTable = errors.New("sqlmini: unknown table")

// unknownTableError formats the canonical unknown-table error. The
// message is identical to the historical fmt.Errorf text, so callers
// matching on the string keep working.
func unknownTableError(name string) error {
	return fmt.Errorf("%w %q", ErrUnknownTable, name)
}

// IsMissingTable reports whether err is an unknown-table error.
func IsMissingTable(err error) bool { return errors.Is(err, ErrUnknownTable) }

// WriteTable returns the table a write statement targets, or "" for
// reads and statements routing does not special-case. The cluster uses
// it to fan an update out to the holders of the actually-written table
// (a class can span more tables than any one of its statements).
func WriteTable(st Statement) string {
	switch s := st.(type) {
	case *InsertStmt:
		return s.Table
	case *UpdateStmt:
		return s.Table
	case *DeleteStmt:
		return s.Table
	}
	return ""
}

// CloneTable returns a deep copy of a table's schema and rows. The copy
// is cut under the engine's read lock, so it is a consistent snapshot
// relative to concurrent writes; rows are copied (execUpdate mutates
// rows in place), so the caller may hold the result while the engine
// keeps serving. This is the live migration's transport: the source
// backend's applier cuts the clone at an exact position in the global
// update order.
func (e *Engine) CloneTable(name string) ([]Column, []Row, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.tables[name]
	if !ok {
		return nil, nil, unknownTableError(name)
	}
	cols := make([]Column, len(t.Cols))
	copy(cols, t.Cols)
	rows := make([]Row, len(t.rows))
	for i, r := range t.rows {
		cp := make(Row, len(r))
		copy(cp, r)
		rows[i] = cp
	}
	return cols, rows, nil
}
