package sqlmini

import (
	"context"
	"fmt"
	"strings"
)

// binder resolves column references against the joined row layout of a
// query: a flat slice of slots, one per (table alias, column).
type binder struct {
	slots []slot
}

type slot struct {
	alias string // table alias (or name)
	table *Table
	col   int
	base  int // index of the slot in the joined row
}

func (b *binder) addTable(alias string, t *Table) {
	base := len(b.slots)
	for i := range t.Cols {
		b.slots = append(b.slots, slot{alias: alias, table: t, col: i, base: base + i})
	}
}

// resolve returns the joined-row index of a column reference.
func (b *binder) resolve(r *ColRef) (int, error) {
	found := -1
	for _, s := range b.slots {
		if s.table.Cols[s.col].Name != r.Column {
			continue
		}
		if r.Table != "" && s.alias != r.Table {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("sqlmini: ambiguous column %q", r.Column)
		}
		found = s.base
	}
	if found < 0 {
		name := r.Column
		if r.Table != "" {
			name = r.Table + "." + r.Column
		}
		return 0, fmt.Errorf("sqlmini: unknown column %q", name)
	}
	return found, nil
}

// evalCtx carries the current joined row, the statement's extracted
// literal parameters (plan.go normalization), and, in aggregate mode,
// the accumulated aggregate values keyed by expression identity.
type evalCtx struct {
	row    Row
	params []Value
	aggs   map[*Agg]Value
}

// eval evaluates an expression; ColRefs must have been rewritten to
// boundCol by bind.
func eval(e Expr, ctx *evalCtx) (Value, error) {
	switch x := e.(type) {
	case *Lit:
		return x.V, nil
	case *boundCol:
		return ctx.row[x.idx], nil
	case *boundParam:
		return ctx.params[x.idx], nil
	case *ColRef:
		return Null, fmt.Errorf("sqlmini: unbound column %q", x.Column)
	case *Agg:
		if ctx.aggs == nil {
			return Null, fmt.Errorf("sqlmini: aggregate %s outside aggregation", x.Func)
		}
		v, ok := ctx.aggs[x]
		if !ok {
			return Null, fmt.Errorf("sqlmini: aggregate %s not computed", x.Func)
		}
		return v, nil
	case *UnOp:
		v, err := eval(x.E, ctx)
		if err != nil {
			return Null, err
		}
		switch x.Op {
		case "NOT":
			if v.IsNull() {
				return Null, nil
			}
			return Bool(!v.Truth()), nil
		case "-":
			switch v.K {
			case KindInt:
				return Int(-v.I), nil
			case KindFloat:
				return Float(-v.F), nil
			case KindNull:
				return Null, nil
			}
			return Null, fmt.Errorf("sqlmini: cannot negate %s", v.K)
		}
		return Null, fmt.Errorf("sqlmini: unknown unary op %q", x.Op)
	case *BinOp:
		return evalBin(x, ctx)
	case *Between:
		v, err := eval(x.E, ctx)
		if err != nil {
			return Null, err
		}
		lo, err := eval(x.Lo, ctx)
		if err != nil {
			return Null, err
		}
		hi, err := eval(x.Hi, ctx)
		if err != nil {
			return Null, err
		}
		if v.IsNull() || lo.IsNull() || hi.IsNull() {
			return Null, nil
		}
		in := Compare(v, lo) >= 0 && Compare(v, hi) <= 0
		if x.Negate {
			in = !in
		}
		return Bool(in), nil
	case *InList:
		v, err := eval(x.E, ctx)
		if err != nil {
			return Null, err
		}
		if v.IsNull() {
			return Null, nil
		}
		found := false
		for _, le := range x.List {
			lv, err := eval(le, ctx)
			if err != nil {
				return Null, err
			}
			if !lv.IsNull() && Compare(v, lv) == 0 {
				found = true
				break
			}
		}
		if x.Negate {
			found = !found
		}
		return Bool(found), nil
	case *IsNull:
		v, err := eval(x.E, ctx)
		if err != nil {
			return Null, err
		}
		isNull := v.IsNull()
		if x.Negate {
			isNull = !isNull
		}
		return Bool(isNull), nil
	}
	return Null, fmt.Errorf("sqlmini: unknown expression %T", e)
}

func evalBin(x *BinOp, ctx *evalCtx) (Value, error) {
	l, err := eval(x.L, ctx)
	if err != nil {
		return Null, err
	}
	// Short-circuit logic ops (SQL three-valued logic, simplified:
	// NULL treated as false for AND/OR outcomes where it matters).
	switch x.Op {
	case "AND":
		if !l.IsNull() && !l.Truth() {
			return Bool(false), nil
		}
		r, err := eval(x.R, ctx)
		if err != nil {
			return Null, err
		}
		return Bool(l.Truth() && r.Truth()), nil
	case "OR":
		if !l.IsNull() && l.Truth() {
			return Bool(true), nil
		}
		r, err := eval(x.R, ctx)
		if err != nil {
			return Null, err
		}
		return Bool(l.Truth() || r.Truth()), nil
	}
	r, err := eval(x.R, ctx)
	if err != nil {
		return Null, err
	}
	switch x.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return Null, nil
		}
		c := Compare(l, r)
		switch x.Op {
		case "=":
			return Bool(c == 0), nil
		case "<>":
			return Bool(c != 0), nil
		case "<":
			return Bool(c < 0), nil
		case "<=":
			return Bool(c <= 0), nil
		case ">":
			return Bool(c > 0), nil
		default:
			return Bool(c >= 0), nil
		}
	case "LIKE":
		if l.K != KindText || r.K != KindText {
			return Null, nil
		}
		return Bool(likeMatch(l.S, r.S)), nil
	case "+", "-", "*", "/":
		if l.IsNull() || r.IsNull() {
			return Null, nil
		}
		lf, lok := l.AsFloat()
		rf, rok := r.AsFloat()
		if !lok || !rok {
			return Null, fmt.Errorf("sqlmini: arithmetic on non-numeric values")
		}
		bothInt := l.K == KindInt && r.K == KindInt
		switch x.Op {
		case "+":
			if bothInt {
				return Int(l.I + r.I), nil
			}
			return Float(lf + rf), nil
		case "-":
			if bothInt {
				return Int(l.I - r.I), nil
			}
			return Float(lf - rf), nil
		case "*":
			if bothInt {
				return Int(l.I * r.I), nil
			}
			return Float(lf * rf), nil
		default:
			if rf == 0 {
				return Null, nil
			}
			return Float(lf / rf), nil
		}
	}
	return Null, fmt.Errorf("sqlmini: unknown operator %q", x.Op)
}

// likeMatch implements SQL LIKE with % (any run) and _ (any one char).
func likeMatch(s, pattern string) bool {
	// Dynamic programming over pattern and string positions.
	return likeRec(s, pattern)
}

func likeRec(s, p string) bool {
	if p == "" {
		return s == ""
	}
	switch p[0] {
	case '%':
		for i := 0; i <= len(s); i++ {
			if likeRec(s[i:], p[1:]) {
				return true
			}
		}
		return false
	case '_':
		return s != "" && likeRec(s[1:], p[1:])
	default:
		return s != "" && s[0] == p[0] && likeRec(s[1:], p[1:])
	}
}

// boundCol replaces ColRef after binding.
type boundCol struct {
	idx  int
	name string
}

func (*boundCol) isExpr() {}

// bind rewrites an expression tree, resolving every ColRef through the
// binder. It returns a new tree; the input is not modified.
func bind(e Expr, b *binder) (Expr, error) {
	switch x := e.(type) {
	case nil:
		return nil, nil
	case *Lit:
		return x, nil
	case *boundCol:
		return x, nil
	case *boundParam:
		return x, nil
	case *ColRef:
		idx, err := b.resolve(x)
		if err != nil {
			return nil, err
		}
		return &boundCol{idx: idx, name: x.Column}, nil
	case *UnOp:
		inner, err := bind(x.E, b)
		if err != nil {
			return nil, err
		}
		return &UnOp{Op: x.Op, E: inner}, nil
	case *BinOp:
		l, err := bind(x.L, b)
		if err != nil {
			return nil, err
		}
		r, err := bind(x.R, b)
		if err != nil {
			return nil, err
		}
		return &BinOp{Op: x.Op, L: l, R: r}, nil
	case *Between:
		ee, err := bind(x.E, b)
		if err != nil {
			return nil, err
		}
		lo, err := bind(x.Lo, b)
		if err != nil {
			return nil, err
		}
		hi, err := bind(x.Hi, b)
		if err != nil {
			return nil, err
		}
		return &Between{E: ee, Lo: lo, Hi: hi, Negate: x.Negate}, nil
	case *InList:
		ee, err := bind(x.E, b)
		if err != nil {
			return nil, err
		}
		list := make([]Expr, len(x.List))
		for i, le := range x.List {
			bl, err := bind(le, b)
			if err != nil {
				return nil, err
			}
			list[i] = bl
		}
		return &InList{E: ee, List: list, Negate: x.Negate}, nil
	case *IsNull:
		ee, err := bind(x.E, b)
		if err != nil {
			return nil, err
		}
		return &IsNull{E: ee, Negate: x.Negate}, nil
	case *Agg:
		if x.E == nil {
			return x, nil
		}
		ee, err := bind(x.E, b)
		if err != nil {
			return nil, err
		}
		return &Agg{Func: x.Func, E: ee, Distinct: x.Distinct}, nil
	}
	return nil, fmt.Errorf("sqlmini: cannot bind %T", e)
}

// collectAggs gathers the aggregate nodes of a bound expression tree.
func collectAggs(e Expr, out *[]*Agg) {
	switch x := e.(type) {
	case *Agg:
		*out = append(*out, x)
	case *UnOp:
		collectAggs(x.E, out)
	case *BinOp:
		collectAggs(x.L, out)
		collectAggs(x.R, out)
	case *Between:
		collectAggs(x.E, out)
		collectAggs(x.Lo, out)
		collectAggs(x.Hi, out)
	case *InList:
		collectAggs(x.E, out)
		for _, le := range x.List {
			collectAggs(le, out)
		}
	case *IsNull:
		collectAggs(x.E, out)
	}
}

// cancelCheckRows is how many rows a scan processes between context
// cancellation checks — frequent enough to bound overrun, rare enough
// that ctx.Err() (an atomic load for most contexts) stays off the
// per-row profile.
const cancelCheckRows = 4096

// execSelect runs a SELECT against one immutable read view. It takes
// no engine lock: the view's rows, pk map and index buckets are frozen
// at publish time, so the scan races with nothing. Planning (binding,
// access-path and join-order choice, predicate pushdown) happens in
// plan.go and is cached per normalized statement shape.
func (e *Engine) execSelect(ctx context.Context, st *SelectStmt, v *readView) (*Result, error) {
	p, params, err := e.planFor(st, v)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	if err := p.run(ctx, v, params, res); err != nil {
		return nil, err
	}
	return res, nil
}

// pkLookup detects "pk = literal" (optionally table-qualified) in a
// WHERE clause that consists of exactly that condition.
func pkLookup(where Expr, t *Table, alias string) (Value, bool) {
	bo, ok := where.(*BinOp)
	if !ok || bo.Op != "=" {
		return Null, false
	}
	cr, lit := bo.L, bo.R
	c, ok := cr.(*ColRef)
	if !ok {
		c, ok = lit.(*ColRef)
		if !ok {
			return Null, false
		}
		cr, lit = lit, cr
		_ = cr
	}
	l, ok := lit.(*Lit)
	if !ok {
		return Null, false
	}
	if c.Table != "" && c.Table != alias {
		return Null, false
	}
	if t.pkCol < 0 || t.Cols[t.pkCol].Name != c.Column {
		return Null, false
	}
	return l.V, true
}

// group accumulates aggregate state for one group.
type group struct {
	sample Row
	aggs   []*Agg
	count  []int64
	sum    []float64
	min    []Value
	max    []Value
	sawInt []bool
	seen   []map[string]bool // per aggregate, for DISTINCT
}

func newGroup(sample Row, aggs []*Agg) *group {
	g := &group{
		sample: sample,
		aggs:   aggs,
		count:  make([]int64, len(aggs)),
		sum:    make([]float64, len(aggs)),
		min:    make([]Value, len(aggs)),
		max:    make([]Value, len(aggs)),
		sawInt: make([]bool, len(aggs)),
	}
	g.seen = make([]map[string]bool, len(aggs))
	for i := range g.min {
		g.min[i] = Null
		g.max[i] = Null
		g.sawInt[i] = true
		if aggs[i].Distinct {
			g.seen[i] = make(map[string]bool)
		}
	}
	return g
}

func (g *group) add(ctx *evalCtx) error {
	for i, a := range g.aggs {
		if a.E == nil { // COUNT(*)
			g.count[i]++
			continue
		}
		v, err := eval(a.E, ctx)
		if err != nil {
			return err
		}
		if v.IsNull() {
			continue
		}
		if a.Distinct {
			k := v.key()
			if g.seen[i][k] {
				continue
			}
			g.seen[i][k] = true
		}
		g.count[i]++
		if f, ok := v.AsFloat(); ok {
			g.sum[i] += f
			if v.K != KindInt {
				g.sawInt[i] = false
			}
		} else {
			g.sawInt[i] = false
		}
		if g.min[i].IsNull() || Compare(v, g.min[i]) < 0 {
			g.min[i] = v
		}
		if g.max[i].IsNull() || Compare(v, g.max[i]) > 0 {
			g.max[i] = v
		}
	}
	return nil
}

func (g *group) aggValues() map[*Agg]Value {
	out := make(map[*Agg]Value, len(g.aggs))
	for i, a := range g.aggs {
		switch a.Func {
		case "COUNT":
			out[a] = Int(g.count[i])
		case "SUM":
			if g.count[i] == 0 {
				out[a] = Null
			} else if g.sawInt[i] {
				out[a] = Int(int64(g.sum[i]))
			} else {
				out[a] = Float(g.sum[i])
			}
		case "AVG":
			if g.count[i] == 0 {
				out[a] = Null
			} else {
				out[a] = Float(g.sum[i] / float64(g.count[i]))
			}
		case "MIN":
			out[a] = g.min[i]
		case "MAX":
			out[a] = g.max[i]
		}
	}
	return out
}

// groupRows partitions rows by the group expressions and accumulates the
// aggregates, preserving first-seen group order.
func groupRows(rows []Row, groupExprs []Expr, aggs []*Agg, params []Value) (map[string]*group, []string, error) {
	groups := make(map[string]*group)
	var order []string
	ctx := &evalCtx{params: params}
	for _, r := range rows {
		ctx.row = r
		var sb strings.Builder
		for _, ge := range groupExprs {
			v, err := eval(ge, ctx)
			if err != nil {
				return nil, nil, err
			}
			sb.WriteString(v.key())
			sb.WriteByte('|')
		}
		k := sb.String()
		g, ok := groups[k]
		if !ok {
			g = newGroup(r, aggs)
			groups[k] = g
			order = append(order, k)
		}
		if err := g.add(ctx); err != nil {
			return nil, nil, err
		}
	}
	// A global aggregation over zero rows still yields one group.
	if len(groupExprs) == 0 && len(rows) == 0 {
		g := newGroup(nil, aggs)
		groups[""] = g
		order = append(order, "")
	}
	return groups, order, nil
}

// execInsert runs an INSERT. Caller holds the write lock.
func (e *Engine) execInsert(st *InsertStmt) (*Result, error) {
	t, ok := e.tables[st.Table]
	if !ok {
		return nil, unknownTableError(st.Table)
	}
	colIdx := make([]int, 0, len(st.Columns))
	if len(st.Columns) == 0 {
		for i := range t.Cols {
			colIdx = append(colIdx, i)
		}
	} else {
		for _, c := range st.Columns {
			i := t.ColumnIndex(c)
			if i < 0 {
				return nil, fmt.Errorf("sqlmini: unknown column %q in table %q", c, st.Table)
			}
			colIdx = append(colIdx, i)
		}
	}
	ctx := &evalCtx{}
	res := &Result{}
	t.prepareInsert()
	for _, exprs := range st.Rows {
		if len(exprs) != len(colIdx) {
			return nil, fmt.Errorf("sqlmini: INSERT expects %d values, got %d", len(colIdx), len(exprs))
		}
		row := make(Row, len(t.Cols))
		for i := range row {
			row[i] = Null
		}
		for i, ex := range exprs {
			be, err := bind(ex, &binder{}) // no columns available in VALUES
			if err != nil {
				return nil, err
			}
			v, err := eval(be, ctx)
			if err != nil {
				return nil, err
			}
			row[colIdx[i]] = v
		}
		if err := t.appendRow(row); err != nil {
			return nil, err
		}
		res.Affected++
	}
	return res, nil
}

// execUpdate runs an UPDATE. Caller holds the write lock.
func (e *Engine) execUpdate(st *UpdateStmt) (*Result, error) {
	t, ok := e.tables[st.Table]
	if !ok {
		return nil, unknownTableError(st.Table)
	}
	b := &binder{}
	b.addTable(st.Table, t)
	var where Expr
	var err error
	if st.Where != nil {
		where, err = bind(st.Where, b)
		if err != nil {
			return nil, err
		}
	}
	type setOp struct {
		col  int
		expr Expr
	}
	sets := make([]setOp, len(st.Set))
	for i, s := range st.Set {
		ci := t.ColumnIndex(s.Column)
		if ci < 0 {
			return nil, fmt.Errorf("sqlmini: unknown column %q in table %q", s.Column, st.Table)
		}
		be, err := bind(s.Expr, b)
		if err != nil {
			return nil, err
		}
		sets[i] = setOp{ci, be}
	}

	res := &Result{}
	ctx := &evalCtx{}

	apply := func(idx int) error {
		// Copy-on-write: unshare the header slice, then replace the
		// touched row with a private copy before assigning into it — the
		// original Row may still back a published read view.
		t.prepareMutate()
		nr := make(Row, len(t.rows[idx]))
		copy(nr, t.rows[idx])
		ctx.row = nr
		for _, s := range sets {
			v, err := eval(s.expr, ctx)
			if err != nil {
				return err
			}
			cv, err := coerce(v, t.Cols[s.col].Type)
			if err != nil {
				return err
			}
			if s.col == t.pkCol {
				old := nr[s.col].key()
				nk := cv.key()
				if nk != old {
					if _, dup := t.pk[nk]; dup {
						return fmt.Errorf("sqlmini: duplicate primary key %s", cv)
					}
					delete(t.pk, old)
					t.pk[nk] = idx
				}
			}
			nr[s.col] = cv
		}
		t.rows[idx] = nr
		res.Affected++
		return nil
	}

	// Fast path: WHERE pk = literal.
	if v, ok := pkLookup(st.Where, t, st.Table); ok {
		res.Scanned++
		if idx, hit := t.pk[v.key()]; hit {
			if err := apply(idx); err != nil {
				return nil, err
			}
		}
		return res, nil
	}

	for idx := range t.rows {
		res.Scanned++
		if where != nil {
			ctx.row = t.rows[idx]
			v, err := eval(where, ctx)
			if err != nil {
				return nil, err
			}
			if !v.Truth() {
				continue
			}
		}
		if err := apply(idx); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// execDelete runs a DELETE. Caller holds the write lock.
func (e *Engine) execDelete(st *DeleteStmt) (*Result, error) {
	t, ok := e.tables[st.Table]
	if !ok {
		return nil, unknownTableError(st.Table)
	}
	b := &binder{}
	b.addTable(st.Table, t)
	var where Expr
	var err error
	if st.Where != nil {
		where, err = bind(st.Where, b)
		if err != nil {
			return nil, err
		}
	}
	res := &Result{}
	ctx := &evalCtx{}
	// Copy-on-write: unshare the header slice before compacting it in
	// place (published views keep the original headers).
	t.prepareMutate()
	kept := t.rows[:0]
	for _, r := range t.rows {
		res.Scanned++
		del := true
		if where != nil {
			ctx.row = r
			v, err := eval(where, ctx)
			if err != nil {
				return nil, err
			}
			del = v.Truth()
		}
		if del {
			res.Affected++
		} else {
			kept = append(kept, r)
		}
	}
	t.rows = kept
	if t.pkCol >= 0 {
		t.pk = make(map[string]int, len(t.rows))
		for i, r := range t.rows {
			t.pk[r[t.pkCol].key()] = i
		}
	}
	return res, nil
}
