// Package stats provides the summary statistics used by the evaluation
// harness: streaming summaries, percentiles, histograms, and the
// deviation-from-balance metric of the paper's Figure 4(j).
package stats

import (
	"math"
	"sort"
)

// Summary accumulates count, mean, min, max and variance of a stream of
// observations (Welford's algorithm).
type Summary struct {
	n          int
	mean, m2   float64
	minV, maxV float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.minV, s.maxV = x, x
	} else {
		if x < s.minV {
			s.minV = x
		}
		if x > s.maxV {
			s.maxV = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the arithmetic mean (0 for an empty summary).
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest observation (0 for an empty summary).
func (s *Summary) Min() float64 { return s.minV }

// Max returns the largest observation (0 for an empty summary).
func (s *Summary) Max() float64 { return s.maxV }

// Var returns the sample variance (0 for fewer than two observations).
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the sample standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Var()) }

// Percentile returns the p-quantile (p in [0,1]) of a sample using
// linear interpolation. The input slice is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// DeviationFromBalance implements Figure 4(j)'s metric: the maximum
// relative deviation of any backend's value (e.g. processing time or
// assigned load) from the all-backend average. A perfectly balanced
// cluster yields 0; a cluster with one idle backend yields about 1.
func DeviationFromBalance(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	avg := 0.0
	for _, v := range values {
		avg += v
	}
	avg /= float64(len(values))
	if avg == 0 {
		return 0
	}
	maxDev := 0.0
	for _, v := range values {
		if d := math.Abs(v-avg) / avg; d > maxDev {
			maxDev = d
		}
	}
	return maxDev
}

// Histogram counts observations into unit buckets 1..max (the paper's
// replication histograms, Figures 4(k) and 4(l), count fragments per
// replica count).
type Histogram struct {
	counts map[int]float64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{counts: make(map[int]float64)} }

// Add increases bucket b by w.
func (h *Histogram) Add(b int, w float64) { h.counts[b] += w }

// Get returns the weight of bucket b.
func (h *Histogram) Get(b int) float64 { return h.counts[b] }

// Buckets returns the non-empty bucket indices in ascending order.
func (h *Histogram) Buckets() []int {
	out := make([]int, 0, len(h.counts))
	for b := range h.counts {
		out = append(out, b)
	}
	sort.Ints(out)
	return out
}

// Scale multiplies every bucket by f (used to average histograms over
// repeated runs).
func (h *Histogram) Scale(f float64) {
	for b := range h.counts {
		h.counts[b] *= f
	}
}

// Merge adds another histogram into this one.
func (h *Histogram) Merge(o *Histogram) {
	for b, w := range o.counts {
		h.counts[b] += w
	}
}
