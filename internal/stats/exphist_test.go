package stats

import (
	"sync"
	"testing"
)

func TestExpHistogramBasics(t *testing.T) {
	var h ExpHistogram
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("zero value not empty")
	}
	for _, v := range []int64{0, 1, 2, 4, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 1000 {
		t.Fatalf("max = %d", h.Max())
	}
	wantMean := float64(0+1+2+4+100+1000) / 6
	if h.Mean() != wantMean {
		t.Fatalf("mean = %v, want %v", h.Mean(), wantMean)
	}
}

func TestExpHistogramQuantileBounds(t *testing.T) {
	var h ExpHistogram
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	// Power-of-two buckets: the estimate is an upper bound within 2x of
	// the true quantile and never above the max.
	for _, tc := range []struct{ p, exact float64 }{{0.5, 500}, {0.95, 950}, {0.99, 990}} {
		got := h.Quantile(tc.p)
		if float64(got) < tc.exact {
			t.Fatalf("q%.2f = %d, below exact %v", tc.p, got, tc.exact)
		}
		if float64(got) > 2*tc.exact {
			t.Fatalf("q%.2f = %d, more than 2x exact %v", tc.p, got, tc.exact)
		}
	}
	if h.Quantile(1) != 1000 {
		t.Fatalf("q1 = %d, want max 1000", h.Quantile(1))
	}
	if h.Quantile(-1) != h.Quantile(0) {
		t.Fatal("p clamping broken")
	}
}

func TestExpHistogramNegativeClampsToZero(t *testing.T) {
	var h ExpHistogram
	h.Observe(-5)
	if h.Count() != 1 || h.Max() != 0 || h.Quantile(1) != 0 {
		t.Fatalf("negative observation mishandled: count=%d max=%d", h.Count(), h.Max())
	}
}

func TestExpHistogramConcurrent(t *testing.T) {
	var h ExpHistogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(int64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 7999 {
		t.Fatalf("max = %d", h.Max())
	}
}
