package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummary(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	// Population variance is 4; sample variance is 32/7.
	if math.Abs(s.Var()-32.0/7) > 1e-12 {
		t.Fatalf("Var = %v", s.Var())
	}
	if math.Abs(s.Stddev()-math.Sqrt(32.0/7)) > 1e-12 {
		t.Fatalf("Stddev = %v", s.Stddev())
	}
}

func TestSummaryEmptyAndSingle(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 {
		t.Fatal("empty summary not zero")
	}
	s.Add(3)
	if s.Var() != 0 || s.Min() != 3 || s.Max() != 3 {
		t.Fatal("single-observation summary wrong")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Percentile(xs, 0) != 1 || Percentile(xs, 1) != 5 {
		t.Fatal("extremes wrong")
	}
	if Percentile(xs, 0.5) != 3 {
		t.Fatalf("median = %v", Percentile(xs, 0.5))
	}
	if got := Percentile(xs, 0.25); got != 2 {
		t.Fatalf("p25 = %v", got)
	}
	if got := Percentile([]float64{1, 2}, 0.5); got != 1.5 {
		t.Fatalf("interpolated median = %v", got)
	}
	if Percentile(nil, 0.5) != 0 {
		t.Fatal("empty percentile not 0")
	}
	// Input must not be modified.
	unsorted := []float64{3, 1, 2}
	Percentile(unsorted, 0.5)
	if unsorted[0] != 3 {
		t.Fatal("input slice was sorted in place")
	}
}

func TestPercentilePropertyWithinRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		p := rng.Float64()
		v := Percentile(xs, p)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return v >= sorted[0]-1e-12 && v <= sorted[n-1]+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDeviationFromBalance(t *testing.T) {
	if d := DeviationFromBalance([]float64{1, 1, 1, 1}); d != 0 {
		t.Fatalf("balanced deviation = %v", d)
	}
	// One idle node out of 4 with others at x: avg = 3x/4, idle deviates
	// by avg/avg = 1.
	if d := DeviationFromBalance([]float64{1, 1, 1, 0}); math.Abs(d-1) > 1e-12 {
		t.Fatalf("idle-node deviation = %v, want 1", d)
	}
	if DeviationFromBalance(nil) != 0 || DeviationFromBalance([]float64{0, 0}) != 0 {
		t.Fatal("degenerate inputs not 0")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	h.Add(1, 2)
	h.Add(3, 1)
	h.Add(1, 1)
	if h.Get(1) != 3 || h.Get(3) != 1 || h.Get(2) != 0 {
		t.Fatal("counts wrong")
	}
	if b := h.Buckets(); len(b) != 2 || b[0] != 1 || b[1] != 3 {
		t.Fatalf("Buckets = %v", b)
	}
	h2 := NewHistogram()
	h2.Add(2, 4)
	h.Merge(h2)
	if h.Get(2) != 4 {
		t.Fatal("merge wrong")
	}
	h.Scale(0.5)
	if h.Get(1) != 1.5 || h.Get(2) != 2 {
		t.Fatal("scale wrong")
	}
}
