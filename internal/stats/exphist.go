package stats

import (
	"math/bits"
	"sync/atomic"
)

// ExpHistogram is a lock-free histogram with power-of-two buckets:
// bucket 0 counts the value 0 and bucket i ≥ 1 counts values in
// [2^(i-1), 2^i). It is safe for concurrent Observe and read calls, so
// the runtime layer can record latencies on hot request paths without a
// lock. The zero value is ready to use.
type ExpHistogram struct {
	counts [65]atomic.Int64
	n      atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

// Observe records one non-negative observation (negative values clamp
// to 0).
func (h *ExpHistogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bits.Len64(uint64(v))].Add(1)
	h.n.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *ExpHistogram) Count() int64 { return h.n.Load() }

// Sum returns the sum of all observations.
func (h *ExpHistogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest observation (0 when empty).
func (h *ExpHistogram) Max() int64 { return h.max.Load() }

// Mean returns the arithmetic mean (0 when empty).
func (h *ExpHistogram) Mean() float64 {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns an upper-bound estimate of the p-quantile
// (p in [0,1]): the inclusive upper edge of the first bucket whose
// cumulative count reaches p, clamped to Max. The estimate is exact to
// within a factor of two — sufficient for the latency percentiles the
// runtime metrics export.
func (h *ExpHistogram) Quantile(p float64) int64 {
	total := h.n.Load()
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := int64(p * float64(total))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= target {
			var upper int64
			if i == 0 {
				upper = 0
			} else {
				upper = int64(1)<<uint(i) - 1
			}
			if m := h.max.Load(); upper > m {
				upper = m
			}
			return upper
		}
	}
	return h.max.Load()
}
