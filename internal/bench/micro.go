package bench

import (
	"fmt"
	"io"
	"math/rand"
	"testing"

	"qcpa/internal/classify"
	"qcpa/internal/core"
	"qcpa/internal/matching"
	"qcpa/internal/sqlmini"
	"qcpa/internal/workload/tpcapp"
	"qcpa/internal/workload/tpch"
)

// micro mirrors the component microbenchmarks of bench_test.go so the
// qcpa-bench binary can record ns/op without `go test`: same setups,
// same inner loops, timed via testing.Benchmark.
var micro = []struct {
	name string
	fn   func(b *testing.B)
}{
	{"MemeticTPCAppTable5", microMemetic},
	{"GreedyTPCHColumn10", microGreedy},
	{"Hungarian50", microHungarian},
	{"ClassifyTPCHColumn", microClassify},
	{"SqlminiPointQuery", microPointQuery},
	{"SqlminiJoinOrder", microJoinOrder},
	{"PlanCacheHit", microPlanCacheHit},
}

// RunMicro times every component microbenchmark and returns the
// results in declaration order, reporting progress to w.
func RunMicro(w io.Writer) []MicroResult {
	var out []MicroResult
	for _, m := range micro {
		r := testing.Benchmark(m.fn)
		mr := MicroResult{Name: m.name, NsPerOp: float64(r.NsPerOp()), Iterations: r.N}
		if w != nil {
			fmt.Fprintf(w, "%-22s %12.0f ns/op  (%d iterations)\n", mr.Name, mr.NsPerOp, mr.Iterations)
		}
		out = append(out, mr)
	}
	return out
}

func microMemetic(b *testing.B) {
	mix, err := tpcapp.Mix(300)
	if err != nil {
		b.Fatal(err)
	}
	res, err := classify.Classify(mix.Journal(200000), tpcapp.Schema(),
		classify.Options{Strategy: classify.TableBased, RowCounts: tpcapp.RowCounts(300)})
	if err != nil {
		b.Fatal(err)
	}
	bs := core.UniformBackends(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Memetic(res.Classification, bs, core.MemeticOptions{Iterations: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

func microGreedy(b *testing.B) {
	mix, err := tpch.Mix()
	if err != nil {
		b.Fatal(err)
	}
	res, err := classify.Classify(mix.Journal(10000), tpch.Schema(),
		classify.Options{Strategy: classify.ColumnBased, RowCounts: tpch.RowCounts(1)})
	if err != nil {
		b.Fatal(err)
	}
	bs := core.UniformBackends(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Greedy(res.Classification, bs); err != nil {
			b.Fatal(err)
		}
	}
}

func microHungarian(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 50
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			cost[i][j] = rng.Float64() * 100
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := matching.Hungarian(cost); err != nil {
			b.Fatal(err)
		}
	}
}

func microClassify(b *testing.B) {
	mix, err := tpch.Mix()
	if err != nil {
		b.Fatal(err)
	}
	journal := mix.Journal(10000)
	schema := tpch.Schema()
	rows := tpch.RowCounts(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := classify.Classify(journal, schema,
			classify.Options{Strategy: classify.ColumnBased, RowCounts: rows}); err != nil {
			b.Fatal(err)
		}
	}
}

func microPointQuery(b *testing.B) {
	e := sqlmini.New()
	if err := tpcapp.Load(e, nil, map[string]int64{"customer": 1000, "orders": 3000}, 1); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sql := fmt.Sprintf(`SELECT c_balance FROM customer WHERE c_id = %d`, i%1000)
		if _, err := e.Exec(sql); err != nil {
			b.Fatal(err)
		}
	}
}
