package bench

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"qcpa/internal/cluster"
	"qcpa/internal/core"
	"qcpa/internal/server"
	"qcpa/internal/sqlmini"
)

// OverloadResult records the connection-scale overload benchmark: many
// pipelined clients offering several times the server's admission
// capacity, verifying that admitted requests keep a bounded tail, that
// rejections are typed with a retry-after hint, and that no request is
// silently dropped.
type OverloadResult struct {
	// Conns and Streams describe the offered load: Conns connections,
	// each with Streams concurrent pipelined requests.
	Conns   int `json:"conns"`
	Streams int `json:"streams"`
	// Factor is offered concurrency over admission capacity
	// (MaxInflight + QueueDepth).
	Factor float64 `json:"factor"`
	// Requests is everything sent; every one of them resolved as
	// admitted, shed, or a transport error — the three fields sum to
	// Requests (zero silent drops).
	Requests        int `json:"requests"`
	Admitted        int `json:"admitted"`
	Shed            int `json:"shed"`
	TransportErrors int `json:"transport_errors"`
	// ShedTypedFraction is the share of rejections that carried a
	// positive retry_after_ms hint.
	ShedTypedFraction float64 `json:"shed_typed_fraction"`
	// AdmittedP50US / AdmittedP99US are client-observed latencies of
	// admitted requests (queue wait + execution + wire).
	AdmittedP50US int64 `json:"admitted_p50_us"`
	AdmittedP99US int64 `json:"admitted_p99_us"`
	// Throughput is admitted requests per second of wall time.
	Throughput float64 `json:"admitted_per_sec"`
	WallMillis float64 `json:"wall_ms"`
}

// RunOverload drives the wire path at ~4x admission capacity and
// reports how the edge held up. Quick mode shrinks the run, not the
// overload factor.
func RunOverload(quick bool, w io.Writer) (*OverloadResult, error) {
	const (
		maxInflight = 8
		queueDepth  = 8
		conns       = 16
		streams     = 4 // per-connection pipelined workers
		serviceTime = 2 * time.Millisecond
	)
	duration := 2 * time.Second
	if quick {
		duration = 500 * time.Millisecond
	}

	cl := core.NewClassification()
	cl.AddFragment(core.Fragment{ID: "a", Size: 1})
	cl.MustAddClass(core.NewClass("QA", core.Read, 1, "a"))
	alloc := core.NewAllocation(cl, core.UniformBackends(1))
	alloc.AddFragments(0, "a")
	alloc.SetAssign(0, "QA", 1)
	if err := alloc.Validate(); err != nil {
		return nil, err
	}
	c, err := cluster.New(cluster.Config{Backends: core.UniformBackends(1)})
	if err != nil {
		return nil, err
	}
	defer c.Close()
	load := func(e *sqlmini.Engine, tables []string) error {
		for _, tb := range tables {
			if err := e.CreateTable(tb, []sqlmini.Column{
				{Name: tb + "_id", Type: sqlmini.KindInt, PrimaryKey: true},
				{Name: tb + "_v", Type: sqlmini.KindInt},
			}); err != nil {
				return err
			}
			if err := e.BulkInsert(tb, []sqlmini.Row{{sqlmini.Int(1), sqlmini.Int(2)}}); err != nil {
				return err
			}
		}
		return nil
	}
	if err := c.Install(alloc, load); err != nil {
		return nil, err
	}
	// A fixed per-statement service time makes capacity well-defined:
	// the admission gate, not engine speed, decides who gets through.
	c.Backend(0).SetFault(&sqlmini.Fault{Latency: serviceTime})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := server.ServeConfig(ln, c, server.Config{Limits: server.Limits{
		MaxConns:     conns + 8,
		MaxInflight:  maxInflight,
		QueueDepth:   queueDepth,
		ConnInflight: streams + 1,
		RetryAfter:   5 * time.Millisecond,
	}})
	defer srv.Close()
	addr := ln.Addr().String()

	type tally struct {
		admitted  int
		shed      int
		shedTyped int
		transport int
		lat       []int64 // admitted latencies, us
	}
	var (
		mu    sync.Mutex
		total tally
		wg    sync.WaitGroup
	)
	start := time.Now()
	deadline := start.Add(duration)
	for i := 0; i < conns; i++ {
		// Retries and the breaker are off: the point is to observe raw
		// shed behavior, not to hide it behind client patience.
		client, err := server.DialOptions(addr, server.ClientOptions{
			MaxRetries: -1, BreakerThreshold: -1, Seed: int64(i + 1),
		})
		if err != nil {
			return nil, err
		}
		defer client.Close()
		for s := 0; s < streams; s++ {
			wg.Add(1)
			go func(cli *server.Client) {
				defer wg.Done()
				var local tally
				for time.Now().Before(deadline) {
					start := time.Now()
					resp, err := cli.Do(server.Request{SQL: `SELECT a_v FROM a WHERE a_id = 1`, Class: "QA"})
					switch {
					case err == nil && resp.OK:
						local.admitted++
						local.lat = append(local.lat, time.Since(start).Microseconds())
					case resp != nil && resp.Code == server.CodeOverload:
						local.shed++
						if resp.RetryAfterMS > 0 {
							local.shedTyped++
						}
						// Honor the hint like a well-behaved client so
						// the shed loop does not busy-spin the wire.
						time.Sleep(time.Duration(resp.RetryAfterMS) * time.Millisecond)
					default:
						local.transport++
						if err != nil {
							return // connection is gone
						}
					}
				}
				mu.Lock()
				total.admitted += local.admitted
				total.shed += local.shed
				total.shedTyped += local.shedTyped
				total.transport += local.transport
				total.lat = append(total.lat, local.lat...)
				mu.Unlock()
			}(client)
		}
	}
	wg.Wait()
	wall := time.Since(start)

	res := &OverloadResult{
		Conns:           conns,
		Streams:         streams,
		Factor:          float64(conns*streams) / float64(maxInflight+queueDepth),
		Requests:        total.admitted + total.shed + total.transport,
		Admitted:        total.admitted,
		Shed:            total.shed,
		TransportErrors: total.transport,
		WallMillis:      float64(wall) / float64(time.Millisecond),
	}
	if total.shed > 0 {
		res.ShedTypedFraction = float64(total.shedTyped) / float64(total.shed)
	}
	if wall > 0 {
		res.Throughput = float64(total.admitted) / wall.Seconds()
	}
	if len(total.lat) > 0 {
		sort.Slice(total.lat, func(i, j int) bool { return total.lat[i] < total.lat[j] })
		res.AdmittedP50US = total.lat[len(total.lat)/2]
		res.AdmittedP99US = total.lat[len(total.lat)*99/100]
	}
	if err := sanity(res); err != nil {
		return nil, err
	}
	if w != nil {
		fmt.Fprintf(w, "overload %.1fx: %d requests, %d admitted (p50 %dus, p99 %dus), %d shed (%.0f%% typed), %d transport errors\n",
			res.Factor, res.Requests, res.Admitted, res.AdmittedP50US, res.AdmittedP99US,
			res.Shed, res.ShedTypedFraction*100, res.TransportErrors)
	}
	return res, nil
}

// sanity enforces the benchmark's contract so a regression fails the
// baseline run instead of silently recording garbage.
func sanity(r *OverloadResult) error {
	if r.Factor < 4 {
		return fmt.Errorf("bench: overload factor %.2f < 4", r.Factor)
	}
	if r.TransportErrors > 0 {
		return fmt.Errorf("bench: %d requests died without a response", r.TransportErrors)
	}
	if r.Shed > 0 && r.ShedTypedFraction < 0.99 {
		return fmt.Errorf("bench: only %.1f%% of rejections carried retry-after", r.ShedTypedFraction*100)
	}
	if r.Admitted == 0 {
		return errors.New("bench: nothing admitted under overload")
	}
	return nil
}
