// Package bench produces the repo's machine-readable perf baseline:
// per-figure wall time plus headline metric for every registered
// experiment, and ns/op for the component microbenchmarks, serialized
// as BENCH_<date>.json by `qcpa-bench -json`. Committing one baseline
// per PR gives every later change a recorded trajectory to compare
// against.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"qcpa/internal/experiments"
)

// FigureResult records one experiment's cost and headline.
type FigureResult struct {
	ID         string  `json:"id"`
	Title      string  `json:"title"`
	WallMillis float64 `json:"wall_ms"`
	Metric     string  `json:"metric"`
	Value      float64 `json:"value"`
}

// MicroResult records one component microbenchmark.
type MicroResult struct {
	Name       string  `json:"name"`
	NsPerOp    float64 `json:"ns_per_op"`
	Iterations int     `json:"iterations"`
}

// Report is the full baseline file.
type Report struct {
	Date       string              `json:"date"`
	GoVersion  string              `json:"go"`
	GOMAXPROCS int                 `json:"gomaxprocs"`
	Quick      bool                `json:"quick"`
	Options    experiments.Options `json:"options"`
	Figures    []FigureResult      `json:"figures"`
	Micro      []MicroResult       `json:"micro"`
	Overload   *OverloadResult     `json:"overload,omitempty"`
	Wire       *WireResult         `json:"wire,omitempty"`
}

// NewReport stamps the environment fields.
func NewReport(date string, quick bool, opts experiments.Options) *Report {
	return &Report{
		Date:       date,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      quick,
		Options:    opts,
	}
}

// Write serializes the report (indented, trailing newline) to path.
func (r *Report) Write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// RunFigures executes the selected experiments (want == nil means all)
// and records wall time and headline metric per figure. Progress goes
// to w (one line per figure) so long runs stay observable.
func RunFigures(opts experiments.Options, want map[string]bool, w io.Writer) ([]FigureResult, error) {
	var out []FigureResult
	for _, e := range experiments.AllExperiments() {
		if want != nil && !want[e.ID] {
			continue
		}
		start := time.Now()
		tab, err := e.Run(opts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.ID, err)
		}
		ms := float64(time.Since(start)) / float64(time.Millisecond)
		fr := FigureResult{
			ID:         e.ID,
			Title:      tab.Title,
			WallMillis: ms,
			Metric:     e.Metric,
			Value:      e.Value(tab),
		}
		if w != nil {
			fmt.Fprintf(w, "%-4s %10.1f ms  %s = %.4g\n", fr.ID, fr.WallMillis, fr.Metric, fr.Value)
		}
		out = append(out, fr)
	}
	return out, nil
}
