package bench

import (
	"fmt"
	"testing"

	"qcpa/internal/sqlmini"
)

// plannerJoinSQL is a three-table join written in the worst textual
// order: the two big tables first, the selective dimension table last.
// Pre-planner this executed left to right, materializing the full
// big1⋈big2 product before the dimension filter could prune anything;
// the cost-based join order starts from the filtered dimension instead.
const plannerJoinSQL = `SELECT b1.v FROM jbig1 b1 JOIN jbig2 b2 ON b2.b1_id = b1.id JOIN jdim d ON d.id = b1.dim_id WHERE d.tag = 't0'`

// plannerJoinEngine builds the star-ish schema behind plannerJoinSQL:
// two big tables of n rows linked by an equi edge, and a dim-row
// dimension table whose tag column keeps 2/dim of the rows.
func plannerJoinEngine(n, dim int) (*sqlmini.Engine, error) {
	e := sqlmini.New()
	for _, ddl := range []string{
		`CREATE TABLE jbig1 (id INT PRIMARY KEY, dim_id INT, v INT)`,
		`CREATE TABLE jbig2 (id INT PRIMARY KEY, b1_id INT, v INT)`,
		`CREATE TABLE jdim (id INT PRIMARY KEY, tag TEXT)`,
	} {
		if _, err := e.Exec(ddl); err != nil {
			return nil, err
		}
	}
	rows1 := make([]sqlmini.Row, 0, n)
	rows2 := make([]sqlmini.Row, 0, n)
	for i := 0; i < n; i++ {
		rows1 = append(rows1, sqlmini.Row{sqlmini.Int(int64(i)), sqlmini.Int(int64(i % dim)), sqlmini.Int(int64(i * 7))})
		rows2 = append(rows2, sqlmini.Row{sqlmini.Int(int64(i)), sqlmini.Int(int64(i)), sqlmini.Int(int64(i * 3))})
	}
	dims := make([]sqlmini.Row, 0, dim)
	for i := 0; i < dim; i++ {
		dims = append(dims, sqlmini.Row{sqlmini.Int(int64(i)), sqlmini.Text(fmt.Sprintf("t%d", i%(dim/2)))})
	}
	for table, rows := range map[string][]sqlmini.Row{"jbig1": rows1, "jbig2": rows2, "jdim": dims} {
		if err := e.BulkInsert(table, rows); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// microJoinOrder times the pessimally-ordered three-table join end to
// end: the planner must rewrite it dimension-first for the run to stay
// proportional to the filtered output instead of the full product.
func microJoinOrder(b *testing.B) {
	e, err := plannerJoinEngine(3000, 50)
	if err != nil {
		b.Fatal(err)
	}
	st, err := sqlmini.Parse(plannerJoinSQL)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := e.ExecStmt(st)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) == 0 {
			b.Fatal("join produced no rows")
		}
	}
}

// microPlanCacheHit times the cached planning path: a warm plan-cache
// lookup plus execution over a deliberately tiny dataset, so the
// normalize-and-lookup cost is what dominates.
func microPlanCacheHit(b *testing.B) {
	e, err := plannerJoinEngine(12, 6)
	if err != nil {
		b.Fatal(err)
	}
	st, err := sqlmini.Parse(plannerJoinSQL)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := e.ExecStmt(st); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.ExecStmt(st); err != nil {
			b.Fatal(err)
		}
	}
}
