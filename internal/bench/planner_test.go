package bench

import (
	"testing"

	"qcpa/internal/sqlmini"
)

// BenchmarkSqlminiJoinOrder is the acceptance benchmark for cost-based
// join ordering: the SQL names the selective dimension table last, so
// only a reordered plan avoids materializing the big1⋈big2 product.
func BenchmarkSqlminiJoinOrder(b *testing.B) {
	microJoinOrder(b)
}

// BenchmarkPlanCacheHit compares a cold plan build (cache invalidated
// every iteration) against the warm lookup path. Run with -benchmem:
// the hit path must allocate less than half of the cold path.
func BenchmarkPlanCacheHit(b *testing.B) {
	run := func(b *testing.B, cold bool) {
		e, err := plannerJoinEngine(12, 6)
		if err != nil {
			b.Fatal(err)
		}
		st, err := sqlmini.Parse(plannerJoinSQL)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.ExecStmt(st); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if cold {
				e.InvalidatePlans()
			}
			if _, err := e.ExecStmt(st); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("cold", func(b *testing.B) { run(b, true) })
	b.Run("hit", func(b *testing.B) { run(b, false) })
}

// TestPlanCacheHitAllocations pins the BenchmarkPlanCacheHit acceptance
// ratio in the regular test suite: planning from the cache must cost
// less than half the allocations of planning cold.
func TestPlanCacheHitAllocations(t *testing.T) {
	e, err := plannerJoinEngine(12, 6)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sqlmini.Parse(plannerJoinSQL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ExecStmt(st); err != nil {
		t.Fatal(err)
	}
	cold := testing.AllocsPerRun(50, func() {
		e.InvalidatePlans()
		if _, err := e.ExecStmt(st); err != nil {
			t.Error(err)
		}
	})
	hit := testing.AllocsPerRun(50, func() {
		if _, err := e.ExecStmt(st); err != nil {
			t.Error(err)
		}
	})
	if hit >= cold/2 {
		t.Fatalf("cache hit allocates %.0f objs/op vs %.0f cold; want < half", hit, cold)
	}
}
