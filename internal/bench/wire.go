package bench

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"syscall"
	"time"

	"qcpa/internal/cluster"
	"qcpa/internal/core"
	"qcpa/internal/server"
	"qcpa/internal/sqlmini"
)

// WireModeResult records one protocol mode of the wire benchmark:
// identical offered load and admission limits, only the encoding (and,
// for the prepared mode, the per-request parse) differ.
type WireModeResult struct {
	// Mode is v1-json, v2-binary, or v2-prepared.
	Mode     string `json:"mode"`
	Requests int    `json:"requests"`
	// Throughput is completed point queries per second of wall time.
	Throughput float64 `json:"requests_per_sec"`
	P50US      int64   `json:"p50_us"`
	P99US      int64   `json:"p99_us"`
}

// WireConnScale records the v2 connection-scale probe: how many
// concurrent connections the server held open and served, bounded by
// the process's file-descriptor limit (each in-process connection costs
// a client fd and a server fd).
type WireConnScale struct {
	Target      int `json:"target"`
	Established int `json:"established"`
	Served      int `json:"served"`
}

// WireResult is the protocol comparison recorded into the baseline:
// the same rotating-literal point-query workload pushed through v1
// JSON, v2 binary, and v2 prepared handles at equal admission limits.
type WireResult struct {
	Conns   int              `json:"conns"`
	Streams int              `json:"streams"`
	Modes   []WireModeResult `json:"modes"`
	// SpeedupV2 and SpeedupPrepared are throughput ratios against the
	// v1-json mode.
	SpeedupV2       float64        `json:"speedup_v2_vs_v1"`
	SpeedupPrepared float64        `json:"speedup_prepared_vs_v1"`
	ConnScale       *WireConnScale `json:"conn_scale,omitempty"`
}

// wireRows is how many distinct literal values the workload rotates
// through: enough that the v1 path keeps parsing fresh statement text
// (the realistic point-query pattern) while the prepared path ships
// only the changing argument.
const wireRows = 512

// RunWire benchmarks the wire path across protocol modes and probes v2
// connection scale. Quick mode shrinks durations and the scale target,
// not the comparison.
func RunWire(quick bool, w io.Writer) (*WireResult, error) {
	const conns, streams = 8, 4
	duration := 1500 * time.Millisecond
	scaleTarget := 10_000
	if quick {
		duration = 300 * time.Millisecond
		scaleTarget = 256
	}

	res := &WireResult{Conns: conns, Streams: streams}
	for _, mode := range []string{"v1-json", "v2-binary", "v2-prepared"} {
		mr, err := runWireMode(mode, conns, streams, duration)
		if err != nil {
			return nil, fmt.Errorf("bench: wire %s: %w", mode, err)
		}
		res.Modes = append(res.Modes, *mr)
		if w != nil {
			fmt.Fprintf(w, "wire %-12s %8.0f req/s  p50 %5dus  p99 %5dus  (%d requests)\n",
				mr.Mode, mr.Throughput, mr.P50US, mr.P99US, mr.Requests)
		}
	}
	v1 := res.Modes[0].Throughput
	if v1 > 0 {
		res.SpeedupV2 = res.Modes[1].Throughput / v1
		res.SpeedupPrepared = res.Modes[2].Throughput / v1
	}
	if w != nil {
		fmt.Fprintf(w, "wire speedup: v2-binary %.2fx, v2-prepared %.2fx over v1-json\n",
			res.SpeedupV2, res.SpeedupPrepared)
	}

	scale, err := runWireConnScale(scaleTarget, w)
	if err != nil {
		return nil, err
	}
	res.ConnScale = scale
	return res, nil
}

// wireFixture builds a cluster with wireRows point rows replicated on
// four backends (so reads load-balance and the wire path, not engine
// contention, is what the modes differ on) and a server with the shared
// admission limits every mode runs under.
func wireFixture(maxConns int) (*cluster.Cluster, *server.Server, string, error) {
	const backends = 4
	cl := core.NewClassification()
	cl.AddFragment(core.Fragment{ID: "a", Size: 1})
	cl.MustAddClass(core.NewClass("QA", core.Read, 1, "a"))
	alloc := core.NewAllocation(cl, core.UniformBackends(backends))
	for b := 0; b < backends; b++ {
		alloc.AddFragments(b, "a")
		alloc.SetAssign(b, "QA", 1.0/backends)
	}
	if err := alloc.Validate(); err != nil {
		return nil, nil, "", err
	}
	c, err := cluster.New(cluster.Config{Backends: core.UniformBackends(backends)})
	if err != nil {
		return nil, nil, "", err
	}
	load := func(e *sqlmini.Engine, tables []string) error {
		for _, tb := range tables {
			if err := e.CreateTable(tb, []sqlmini.Column{
				{Name: tb + "_id", Type: sqlmini.KindInt, PrimaryKey: true},
				{Name: tb + "_v", Type: sqlmini.KindInt},
			}); err != nil {
				return err
			}
			rows := make([]sqlmini.Row, wireRows)
			for i := range rows {
				rows[i] = sqlmini.Row{sqlmini.Int(int64(i)), sqlmini.Int(int64(2 * i))}
			}
			if err := e.BulkInsert(tb, rows); err != nil {
				return err
			}
		}
		return nil
	}
	if err := c.Install(alloc, load); err != nil {
		c.Close()
		return nil, nil, "", err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		c.Close()
		return nil, nil, "", err
	}
	srv := server.ServeConfig(ln, c, server.Config{Limits: server.Limits{
		MaxConns: maxConns,
	}})
	return c, srv, ln.Addr().String(), nil
}

// runWireMode drives one protocol mode against a fresh fixture (a
// shared fixture would let one mode warm caches for the next).
func runWireMode(mode string, conns, streams int, duration time.Duration) (*WireModeResult, error) {
	c, srv, addr, err := wireFixture(conns + 8)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	defer srv.Close()

	proto := 2
	if mode == "v1-json" {
		proto = 1
	}
	var (
		mu       sync.Mutex
		requests int
		lat      []int64
		firstErr error
		wg       sync.WaitGroup
	)
	// Warm the path (connections, caches, scheduler) before measuring so
	// the first mode is not penalized for paying the startup costs.
	warmEnd := time.Now().Add(duration / 3)
	deadline := warmEnd.Add(duration)
	for i := 0; i < conns; i++ {
		client, err := server.DialOptions(addr, server.ClientOptions{
			MaxRetries: -1, BreakerThreshold: -1, Protocol: proto, Seed: int64(i + 1),
		})
		if err != nil {
			return nil, err
		}
		defer client.Close()
		var st *server.Stmt
		if mode == "v2-prepared" {
			st, err = client.Prepare(`SELECT a_v FROM a WHERE a_id = 1`, "QA", false)
			if err != nil {
				return nil, err
			}
		}
		for s := 0; s < streams; s++ {
			wg.Add(1)
			go func(worker int) {
				defer wg.Done()
				var local []int64
				n, counted := 0, 0
				for {
					id := int64((worker*7919 + n) % wireRows)
					t0 := time.Now()
					if !t0.Before(deadline) {
						break
					}
					var (
						resp *server.Response
						err  error
					)
					if st != nil {
						resp, err = st.Exec(id)
					} else {
						resp, err = client.Do(server.Request{
							SQL:   fmt.Sprintf(`SELECT a_v FROM a WHERE a_id = %d`, id),
							Class: "QA",
						})
					}
					if err != nil || !resp.OK {
						mu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("%s request failed: resp=%+v err=%v", mode, resp, err)
						}
						mu.Unlock()
						return
					}
					if t0.After(warmEnd) {
						local = append(local, time.Since(t0).Microseconds())
						counted++
					}
					n++
				}
				mu.Lock()
				requests += counted
				lat = append(lat, local...)
				mu.Unlock()
			}(i*streams + s)
		}
	}
	wg.Wait()
	wall := time.Since(warmEnd)
	if firstErr != nil {
		return nil, firstErr
	}
	if requests == 0 {
		return nil, errors.New("no requests completed")
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return &WireModeResult{
		Mode:       mode,
		Requests:   requests,
		Throughput: float64(requests) / wall.Seconds(),
		P50US:      lat[len(lat)/2],
		P99US:      lat[len(lat)*99/100],
	}, nil
}

// runWireConnScale opens as many concurrent v2 connections as the fd
// limit allows (up to target), serves one point query on each, and
// reports how many the server held and answered.
func runWireConnScale(target int, w io.Writer) (*WireConnScale, error) {
	if limit := fdLimit(); limit > 0 {
		// Each connection costs two fds in-process (client + server
		// side); keep headroom for listeners, files, and the runtime.
		if max := (limit - 128) / 2; target > max {
			target = max
		}
	}
	if target < 1 {
		return nil, errors.New("bench: fd limit leaves no room for connections")
	}
	c, srv, addr, err := wireFixture(target + 8)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	defer srv.Close()

	scale := &WireConnScale{Target: target}
	clients := make([]*server.Client, 0, target)
	defer func() {
		for _, cl := range clients {
			cl.Close()
		}
	}()
	// Dial in bounded batches so the accept queue never overflows.
	const dialers = 64
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	sem := make(chan struct{}, dialers)
	for i := 0; i < target; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			cl, err := server.DialOptions(addr, server.ClientOptions{
				MaxRetries: -1, BreakerThreshold: -1,
			})
			if err != nil {
				return
			}
			resp, err := cl.Do(server.Request{SQL: `SELECT a_v FROM a WHERE a_id = 1`, Class: "QA"})
			mu.Lock()
			clients = append(clients, cl)
			scale.Established++
			if err == nil && resp.OK {
				scale.Served++
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	if w != nil {
		fmt.Fprintf(w, "wire conn-scale: %d/%d connections established, %d served\n",
			scale.Established, scale.Target, scale.Served)
	}
	if scale.Served < scale.Target*9/10 {
		return nil, fmt.Errorf("bench: only %d of %d connections served", scale.Served, scale.Target)
	}
	return scale, nil
}

// fdLimit returns the soft RLIMIT_NOFILE, or 0 when unknown.
func fdLimit() int {
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil {
		return 0
	}
	if rl.Cur > 1<<20 {
		return 1 << 20
	}
	return int(rl.Cur)
}
